"""Variable space of the marginal-balance linear program.

The LP operates on aggregate (marginal) probabilities of the network CTMC —
the paper's key idea: instead of the combinatorial global state space, keep
only ``O(M^2 (N+1))`` marginal terms (times phase counts):

* ``pi_k(n, h)   = P[n_k = n, h_k = h]``                    block ``("pi", k)``
* ``V_jk(a, n, h) = P[n_j >= 1, h_j = a, n_k = n, h_k = h]``  block ``("V", j, k)``
* ``W_jk(a, n, h) = P[n_j = 0,  h_j = a, n_k = n, h_k = h]``  block ``("W", j, k)``
* ``G_jk(a, n, h) = E[n_j * 1{h_j = a, n_k = n, h_k = h}]``   block ``("G", j, k)``

``V``/``W`` carry the *busy-source* information the marginal cut balances
need (paper eq. (1)); ``G`` carries the first conditional moment needed for
load-dependent (delay) sources and for the exact population couplings.
``G`` is resolved by the source phase ``a`` so that it can be sandwiched
per phase against ``V`` and tied to the queue-length moments of station j.

With ``triples=True`` (the default for M >= 3), two triple-joint families
are added for every ordered triple of distinct stations ``(i, j, k)``:

* ``S_ijk(e, a, n, h) = P[n_i >= 1, h_i = e, h_j = a, n_k = n, h_k = h]``
* ``T_ijk(e, a, n, h) = E[n_j * 1{n_i >= 1, h_i = e, h_j = a, n_k = n, h_k = h}]``

They make the *conditional first-moment drift balances* (family H in
DESIGN.md) expressible, which is what pins the ``G`` variables tightly.
"""

from __future__ import annotations

import numpy as np

from repro.network.model import Network

__all__ = ["VariableIndex"]


class VariableIndex:
    """Flat indexing of all LP variables for a given network.

    Blocks are laid out contiguously; per-block coordinates map to flat
    indices via row-major ``ravel``.  All accessors are vectorized: any
    coordinate may be an integer or an integer array (numpy broadcasting
    applies).
    """

    def __init__(self, network: Network, triples: bool | None = None) -> None:
        self.network = network
        M = network.n_stations
        N = network.population
        K = network.phase_orders
        self.triples = (M >= 3) if triples is None else (triples and M >= 3)
        self._offset: dict[tuple, int] = {}
        self._shape: dict[tuple, tuple[int, ...]] = {}
        total = 0
        for k in range(M):
            key = ("pi", k)
            self._offset[key] = total
            self._shape[key] = (N + 1, K[k])
            total += (N + 1) * K[k]
        for j in range(M):
            for k in range(M):
                if j == k:
                    continue
                for fam in ("V", "W", "G"):
                    key = (fam, j, k)
                    self._offset[key] = total
                    self._shape[key] = (K[j], N + 1, K[k])
                    total += K[j] * (N + 1) * K[k]
        if self.triples:
            for i in range(M):
                for j in range(M):
                    for k in range(M):
                        if len({i, j, k}) != 3:
                            continue
                        for fam in ("S", "T"):
                            key = (fam, i, j, k)
                            self._offset[key] = total
                            self._shape[key] = (K[i], K[j], N + 1, K[k])
                            total += K[i] * K[j] * (N + 1) * K[k]
        self.size = total

    # ------------------------------------------------------------------ #
    def block(self, *key) -> tuple[int, tuple[int, ...]]:
        """(offset, shape) of a block, e.g. ``block("V", 0, 2)``."""
        return self._offset[key], self._shape[key]

    def blocks(self):
        """Iterate ``(key, offset, shape)`` over all blocks in layout order."""
        for key, off in self._offset.items():
            yield key, off, self._shape[key]

    def pi(self, k: int, n, h):
        """Flat index of ``pi_k(n, h)`` (vectorized over ``n``/``h``)."""
        off, shape = self.block("pi", k)
        return off + np.ravel_multi_index((n, h), shape)

    def V(self, j: int, k: int, a, n, h):
        """Flat index of ``V_jk(a, n, h)``."""
        off, shape = self.block("V", j, k)
        return off + np.ravel_multi_index((a, n, h), shape)

    def W(self, j: int, k: int, a, n, h):
        """Flat index of ``W_jk(a, n, h)``."""
        off, shape = self.block("W", j, k)
        return off + np.ravel_multi_index((a, n, h), shape)

    def G(self, j: int, k: int, a, n, h):
        """Flat index of ``G_jk(a, n, h)``."""
        off, shape = self.block("G", j, k)
        return off + np.ravel_multi_index((a, n, h), shape)

    def S(self, i: int, j: int, k: int, e, a, n, h):
        """Flat index of the triple probability ``S_ijk(e, a, n, h)``."""
        off, shape = self.block("S", i, j, k)
        return off + np.ravel_multi_index((e, a, n, h), shape)

    def T(self, i: int, j: int, k: int, e, a, n, h):
        """Flat index of the triple first moment ``T_ijk(e, a, n, h)``."""
        off, shape = self.block("T", i, j, k)
        return off + np.ravel_multi_index((e, a, n, h), shape)

    # ------------------------------------------------------------------ #
    def default_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """(lower, upper) variable bounds including structural zeros.

        Probabilities live in [0, 1]; ``G_jk(., n, .)`` in ``[0, N - n]``
        (when station k holds n jobs at most ``N - n`` can sit at j).
        Structural zeros: ``V_jk(., N, .) = 0`` and ``G_jk(., N, .) = 0``
        (station j cannot be busy while k holds the whole population).
        """
        N = self.network.population
        lo = np.zeros(self.size)
        hi = np.ones(self.size)
        levels = np.arange(N + 1, dtype=float)
        for key, off, shape in self.blocks():
            fam = key[0]
            size = int(np.prod(shape))
            if fam == "G":
                block_hi = np.broadcast_to((N - levels)[None, :, None], shape)
                hi[off : off + size] = block_hi.ravel()
            elif fam == "V":
                block_hi = np.ones(shape)
                block_hi[:, N, :] = 0.0
                hi[off : off + size] = block_hi.ravel()
            elif fam == "S":
                # n_i >= 1 and n_k = n force n <= N - 1.
                block_hi = np.ones(shape)
                block_hi[:, :, N, :] = 0.0
                hi[off : off + size] = block_hi.ravel()
            elif fam == "T":
                # n_i >= 1 and n_k = n force n_j <= N - n - 1.
                block_hi = np.broadcast_to(
                    np.clip(N - 1 - levels, 0.0, None)[None, None, :, None], shape
                )
                hi[off : off + size] = block_hi.ravel()
        return lo, hi

    def describe(self, flat_index: int) -> str:
        """Human-readable name of a flat variable index (debugging aid)."""
        for key, off, shape in self.blocks():
            size = int(np.prod(shape))
            if off <= flat_index < off + size:
                coords = np.unravel_index(flat_index - off, shape)
                fam = key[0]
                rest = ",".join(str(c) for c in key[1:])
                inner = ",".join(str(int(c)) for c in coords)
                return f"{fam}[{rest}]({inner})"
        raise IndexError(f"flat index {flat_index} out of range")

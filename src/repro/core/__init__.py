"""The paper's contribution: LP performance bounds from marginal balances.

Workflow::

    from repro.core import solve_bounds
    result = solve_bounds(network)          # utilization/throughput/qlen/R
    result.response_time.lower, result.response_time.upper

or metric-by-metric with :func:`bound_metric` and the objective builders in
:mod:`repro.core.objectives`.
"""

from repro.core.variables import VariableIndex
from repro.core.assembly import (
    AssemblyCache,
    AssemblyPlan,
    assemble,
    canonical_form,
    get_assembly_cache,
    topology_key,
)
from repro.core.constraints import (
    ConstraintSystem,
    build_constraints,
    build_constraints_reference,
)
from repro.core.objectives import (
    LinearMetric,
    throughput_metric,
    utilization_metric,
    idle_probability_metric,
    queue_length_metric,
    queue_length_moment_metric,
    system_throughput_metric,
)
from repro.core.lp import LPSolution, optimize_metric
from repro.core.bounds import (
    Interval,
    BoundsResult,
    bound_metric,
    solve_bounds,
    response_time_bounds,
)
from repro.core.projection import project_exact_solution, verify_exactness

__all__ = [
    "VariableIndex",
    "AssemblyCache",
    "AssemblyPlan",
    "ConstraintSystem",
    "assemble",
    "build_constraints",
    "build_constraints_reference",
    "canonical_form",
    "get_assembly_cache",
    "topology_key",
    "LinearMetric",
    "throughput_metric",
    "utilization_metric",
    "idle_probability_metric",
    "queue_length_metric",
    "queue_length_moment_metric",
    "system_throughput_metric",
    "LPSolution",
    "optimize_metric",
    "Interval",
    "BoundsResult",
    "bound_metric",
    "solve_bounds",
    "response_time_bounds",
    "project_exact_solution",
    "verify_exactness",
]

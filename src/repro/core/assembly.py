"""Vectorized block assembly of the marginal-balance LP.

This module is the performance kernel behind :func:`build_constraints`:
instead of emitting the constraint matrix row by row (the seed
implementation, preserved verbatim in
:mod:`repro.core.assembly_reference`), every constraint family computes its
full COO ``(rows, cols, vals)`` arrays in one shot with numpy broadcasting
over ``(a, n, h)`` index grids.  The two implementations produce the *same
polytope, bit for bit*: identical rows (up to row order), identical labels,
identical right-hand sides — machine-checked by
``tests/core/test_assembly_equivalence.py`` on every catalog scenario.

Three layers:

``_BlockBuilder`` / ``LazyLabels``
    COO accumulation in family-sized blocks.  Row labels are kept as
    (format, index-array) blocks and materialized only on access — label
    strings are debugging metadata and must not cost anything on the hot
    path.

``AssemblyPlan``
    The per-*topology* precomputation: station matrices, per-family phase
    patterns (phase exit rates, phase-change matrices, routing factors,
    source/pair/triple lists, family-H eligibility).  None of it depends on
    the population ``N``, so one plan serves every point of a population
    sweep; :meth:`AssemblyPlan.assemble` re-materializes only the
    N-dependent slices (index grids, level scalings, population couplings,
    bounds).

``AssemblyCache``
    A small keyed store of plans, keyed by the topology fingerprint
    (station matrices + routing + constraint tier).  The process-wide
    default (:func:`get_assembly_cache`) is what
    :class:`~repro.runtime.batch.BatchLPSolver` — and therefore the solver
    registry and every sweep worker — routes through, so a population
    sweep computes the block patterns exactly once per topology.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.core.variables import VariableIndex
from repro.network.model import Network
from repro.utils.errors import NotSupportedError

__all__ = [
    "AssemblyCache",
    "AssemblyPlan",
    "ConstraintSystem",
    "LazyLabels",
    "assemble",
    "canonical_form",
    "get_assembly_cache",
    "topology_key",
]


# ---------------------------------------------------------------------- #
# the assembled system
# ---------------------------------------------------------------------- #
@dataclass
class ConstraintSystem:
    """The assembled LP constraint set ``A_eq x = b_eq``, ``A_ub x <= b_ub``."""

    vi: VariableIndex
    A_eq: sp.csr_matrix
    b_eq: np.ndarray
    A_ub: sp.csr_matrix
    b_ub: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    eq_labels: "Sequence[str]" = field(default_factory=list)
    ub_labels: "Sequence[str]" = field(default_factory=list)

    @property
    def n_variables(self) -> int:
        return self.vi.size

    @property
    def n_equalities(self) -> int:
        return self.A_eq.shape[0]

    @property
    def n_inequalities(self) -> int:
        return self.A_ub.shape[0]

    @property
    def n_rows(self) -> int:
        """Total emitted constraint rows (equalities + inequalities)."""
        return self.n_equalities + self.n_inequalities

    def residuals(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(equality residuals, inequality violations) at point ``x``.

        Used by the projection tests: for the projected exact solution both
        must vanish (up to round-off).
        """
        eq_res = self.A_eq @ x - self.b_eq if self.n_equalities else np.empty(0)
        ub_res = (
            np.clip(self.A_ub @ x - self.b_ub, 0.0, None)
            if self.n_inequalities
            else np.empty(0)
        )
        bound_low = np.clip(self.lb - x, 0.0, None)
        bound_high = np.clip(x - self.ub, 0.0, None)
        ub_all = np.concatenate([ub_res, bound_low, bound_high])
        return eq_res, ub_all


# ---------------------------------------------------------------------- #
# lazy row labels
# ---------------------------------------------------------------------- #
class LazyLabels(Sequence):
    """Row labels stored as (format, index-array) blocks, built on demand.

    Generating one f-string per constraint row is pure overhead on the
    assembly hot path (labels are only read by debugging aids like
    :func:`repro.core.projection.verify_exactness`), so the block assembler
    records, per family, a printf-style format plus the integer coordinate
    arrays, and materializes the strings on first access.  Supports
    everything a ``list[str]`` supports for reading, including ``==``
    against plain lists.
    """

    def __init__(self) -> None:
        self._blocks: list[tuple[str, tuple, int]] = []
        self._n = 0
        self._cache: "list[str] | None" = None

    def append_block(self, fmt: str, arrays: tuple = (), count: int = 1) -> None:
        """Record ``count`` labels ``fmt % coords`` (coords zipped from arrays)."""
        if count <= 0:
            return
        self._blocks.append((fmt, tuple(arrays), int(count)))
        self._n += int(count)
        self._cache = None

    def _materialize(self) -> list[str]:
        if self._cache is None:
            out: list[str] = []
            for fmt, arrays, count in self._blocks:
                if not arrays:
                    out.extend([fmt] * count)
                else:
                    cols = [np.asarray(a).ravel().tolist() for a in arrays]
                    out.extend(fmt % t for t in zip(*cols))
            self._cache = out
        return self._cache

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self):
        return iter(self._materialize())

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyLabels):
            return self._materialize() == other._materialize()
        if isinstance(other, (list, tuple)):
            return self._materialize() == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LazyLabels(n={self._n})"


# ---------------------------------------------------------------------- #
# block accumulation
# ---------------------------------------------------------------------- #
class _RowGroup:
    """Handle for a contiguous group of rows emitted by one family."""

    __slots__ = ("base", "n_local", "kept", "compact")

    def __init__(self, base: int, n_local: int, kept, compact) -> None:
        self.base = base
        self.n_local = n_local
        self.kept = kept  # None = all rows kept
        self.compact = compact  # local index -> kept-row offset


class _BlockBuilder:
    """Accumulates a constraint matrix as family-sized COO blocks.

    The contract mirrors the seed row builder exactly: zero-valued entries
    are dropped, duplicate ``(row, col)`` entries are summed in emission
    order (scipy's stable COO->CSR path), and rows may be skipped via a
    ``keep`` mask (renumbering the survivors contiguously).
    """

    def __init__(self) -> None:
        self._rows: list[np.ndarray] = []
        self._cols: list[np.ndarray] = []
        self._vals: list[np.ndarray] = []
        self._rhs: list[np.ndarray] = []
        self.labels = LazyLabels()
        self.n_rows = 0

    def rows(
        self,
        count: int,
        rhs,
        fmt: str,
        label_arrays: tuple = (),
        keep=None,
    ) -> _RowGroup:
        """Open a group of ``count`` rows; returns the handle for entries.

        ``keep`` is an optional boolean mask over the local row grid: rows
        with ``keep == False`` are dropped entirely (matching the seed
        assembler's empty-row skip) and the survivors are renumbered.
        """
        count = int(count)
        kept = compact = None
        kept_count = count
        if keep is not None:
            keep = np.asarray(keep, dtype=bool).ravel()
            if keep.shape[0] != count:
                raise ValueError("keep mask does not cover the row grid")
            if not keep.all():
                kept = keep
                compact = np.cumsum(keep) - 1
                kept_count = int(keep.sum())
                label_arrays = tuple(
                    np.asarray(a).ravel()[keep] for a in label_arrays
                )
                if np.ndim(rhs):
                    rhs = np.asarray(rhs, dtype=float).ravel()[keep]
        group = _RowGroup(self.n_rows, count, kept, compact)
        self.n_rows += kept_count
        if kept_count:
            rhs_arr = np.broadcast_to(np.asarray(rhs, dtype=float), (kept_count,))
            self._rhs.append(np.ascontiguousarray(rhs_arr))
        self.labels.append_block(fmt, label_arrays, kept_count)
        return group

    def entries(self, group: _RowGroup, local, cols, vals) -> None:
        """Emit one term block: ``local`` row grid indices, columns, values.

        All three broadcast against each other; zero values are filtered
        (as the seed's per-row builder did), preserving emission order so
        duplicate-coefficient summation stays bit-identical.
        """
        shape = np.broadcast_shapes(
            np.shape(local), np.shape(cols), np.shape(vals)
        )
        local = np.broadcast_to(local, shape).ravel()
        cols = np.broadcast_to(cols, shape).ravel()
        vals = np.ascontiguousarray(
            np.broadcast_to(vals, shape), dtype=float
        ).ravel()
        mask = vals != 0.0
        if group.kept is not None:
            mask &= group.kept[local]
        local = local[mask]
        if group.compact is not None:
            rows = group.base + group.compact[local]
        else:
            rows = group.base + local
        self._rows.append(rows.astype(np.int64, copy=False))
        self._cols.append(cols[mask].astype(np.int64, copy=False))
        self._vals.append(vals[mask])

    def build(self, n_vars: int) -> tuple[sp.csr_matrix, np.ndarray]:
        """Finalize into (CSR matrix, rhs vector) exactly like the seed."""
        if self.n_rows == 0:
            return sp.csr_matrix((0, n_vars)), np.empty(0)
        A = sp.coo_matrix(
            (
                np.concatenate(self._vals),
                (np.concatenate(self._rows), np.concatenate(self._cols)),
            ),
            shape=(self.n_rows, n_vars),
        ).tocsr()
        A.sum_duplicates()
        return A, np.concatenate(self._rhs)


# ---------------------------------------------------------------------- #
# topology keying
# ---------------------------------------------------------------------- #
def topology_key(
    network: Network,
    triples: "bool | None" = None,
    include_redundant: bool = False,
) -> str:
    """Digest of everything the block patterns depend on, *except* ``N``.

    Two networks share a key iff they differ only in population — the
    assembly-cache contract: one :class:`AssemblyPlan` serves every point
    of a population sweep.
    """
    h = hashlib.sha256()
    resolved = _resolve_triples(network, triples)
    h.update(f"v1|M={network.n_stations}|t={int(resolved)}"
             f"|r={int(include_redundant)}|".encode())
    for st in network.stations:
        h.update(f"{st.kind}|{st.servers}|{st.phases}|".encode())
        h.update(np.ascontiguousarray(st.service.D0, dtype=float).tobytes())
        h.update(np.ascontiguousarray(st.service.D1, dtype=float).tobytes())
    h.update(np.ascontiguousarray(network.routing, dtype=float).tobytes())
    return h.hexdigest()


def _resolve_triples(network: Network, triples: "bool | None") -> bool:
    M = network.n_stations
    return (M >= 3) if triples is None else (bool(triples) and M >= 3)


# ---------------------------------------------------------------------- #
# the per-topology plan
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _StationPattern:
    """N-independent per-station data used by the family emitters."""

    kind: str
    K: int
    D0: np.ndarray
    D1: np.ndarray
    e: np.ndarray        # D1 row sums (phase event rates)
    d0_out: np.ndarray   # off-diagonal D0 row sums
    mu: float            # D1[0, 0] (delay stations; 0.0 otherwise)


class AssemblyPlan:
    """Precomputed block patterns of one network topology.

    Everything stored here is independent of the population ``N``:
    station matrices and derived phase-rate vectors, routing factors,
    source/pair/triple enumeration, the family-A/H phase-transition
    patterns, and family-H eligibility.  :meth:`assemble` materializes the
    constraint system for a concrete population.
    """

    def __init__(
        self,
        network: Network,
        triples: "bool | None" = None,
        include_redundant: bool = False,
    ) -> None:
        for st in network.stations:
            if st.kind == "multiserver":
                raise NotSupportedError(
                    f"station {st.name!r}: multiserver stations are not "
                    "supported by the marginal-balance LP"
                )
        self.triples = _resolve_triples(network, triples)
        self.include_redundant = bool(include_redundant)
        self.key = topology_key(network, self.triples, self.include_redundant)
        self.M = network.n_stations
        self.routing = network.routing
        self.stations: list[_StationPattern] = []
        for st in network.stations:
            D0 = np.asarray(st.service.D0, dtype=float)
            D1 = np.asarray(st.service.D1, dtype=float)
            self.stations.append(
                _StationPattern(
                    kind=st.kind,
                    K=st.phases,
                    D0=D0,
                    D1=D1,
                    e=D1.sum(axis=1),
                    d0_out=D0.sum(axis=1) - np.diag(D0),
                    mu=float(D1[0, 0]) if st.kind == "delay" else 0.0,
                )
            )
        M = self.M
        routing = self.routing
        #: per-destination source stations (arrival flows j -> k)
        self.sources = [
            [j for j in range(M) if j != k and routing[j, k] > 0.0]
            for k in range(M)
        ]
        # Family A / H phase patterns per station: the "out" weight per
        # phase and the same-level phase-change rate matrix (diagonal
        # zeroed — the g == h term never enters the balance).
        self.w_out: list[np.ndarray] = []
        self.phase_in: list[np.ndarray] = []
        for k, sd in enumerate(self.stations):
            qkk = routing[k, k]
            self.w_out.append(
                sd.d0_out + qkk * (sd.e - np.diag(sd.D1)) + (1.0 - qkk) * sd.e
            )
            rate_in = sd.D0 + qkk * sd.D1  # [g, h]: phase g -> h
            rate_in = rate_in.copy()
            np.fill_diagonal(rate_in, 0.0)
            self.phase_in.append(rate_in)
        # Family H eligibility: ordered pairs (j, k) with j queue-kind whose
        # third-party feeders are all queue-kind (and triples available
        # when feeders exist).
        self.h_pairs: list[tuple[int, int, list[int]]] = []
        for j in range(M):
            if self.stations[j].kind != "queue":
                continue
            for k in range(M):
                if j == k:
                    continue
                third = [i for i in range(M) if i not in (j, k)]
                feeders = [
                    i for i in third
                    if routing[i, j] > 0.0 or routing[i, k] > 0.0
                ]
                if any(self.stations[i].kind != "queue" for i in feeders):
                    continue
                if feeders and not self.triples:
                    continue
                self.h_pairs.append((j, k, third))

    # ------------------------------------------------------------------ #
    def matches(self, network: Network) -> bool:
        """True when ``network`` shares this plan's topology (any ``N``)."""
        return (
            network.n_stations == self.M
            and topology_key(network, self.triples, self.include_redundant)
            == self.key
        )

    def assemble(
        self, network: Network, vi: "VariableIndex | None" = None
    ) -> ConstraintSystem:
        """Materialize the constraint system at ``network.population``.

        The network must share this plan's topology exactly (station
        matrices, kinds, routing, constraint tier) — a stale plan would
        silently bake the wrong phase patterns into the LP, so the full
        topology key is checked, not just the station count.
        """
        if not self.matches(network):
            raise ValueError(
                "network does not match this assembly plan's topology "
                f"(plan key {self.key[:12]}...)"
            )
        if vi is not None and vi.triples != self.triples:
            raise ValueError(
                f"variable index tier (triples={vi.triples}) does not match "
                f"this plan (triples={self.triples})"
            )
        vi = vi or VariableIndex(network, triples=self.triples)
        asm = _Assembler(self, network, vi)
        return asm.run()


class _Assembler:
    """One :meth:`AssemblyPlan.assemble` invocation (per-N state)."""

    def __init__(
        self, plan: AssemblyPlan, network: Network, vi: VariableIndex
    ) -> None:
        self.plan = plan
        self.net = network
        self.vi = vi
        self.N = network.population
        self.eq = _BlockBuilder()
        self.ub = _BlockBuilder()
        #: per-station level scalings c_k(0..N) (the N-dependent slice)
        self.c = [
            st.rate_scale(np.arange(self.N + 1)) for st in network.stations
        ]

    # -- shared helpers ------------------------------------------------- #
    def _source_block(self, builder, group, local, j, k, nn, hh, coeff):
        """Emit the arrival-rate term block of source ``j`` into ``k``.

        ``nn``/``hh`` are the conditioned level/phase grids (broadcastable
        against ``local``); ``coeff`` multiplies the per-phase event rate
        (routing probability and sign).
        """
        sd = self.plan.stations[j]
        if sd.kind == "queue":
            aa = np.arange(sd.K)
            cols = self.vi.V(j, k, aa, nn[..., None], hh[..., None])
            builder.entries(
                group, local[..., None], cols, coeff * sd.e[aa]
            )
        else:  # delay: rate n_j * mu enters through the first moment G
            cols = self.vi.G(j, k, 0, nn, hh)
            builder.entries(group, local, cols, coeff * sd.mu)

    # -- family emitters ------------------------------------------------ #
    def _family_A(self) -> None:
        N, vi, eq = self.N, self.vi, self.eq
        routing = self.plan.routing
        for k in range(self.plan.M):
            sd = self.plan.stations[k]
            Kk = sd.K
            qkk = routing[k, k]
            sources = self.plan.sources[k]
            c_k = self.c[k]
            nn = np.arange(N + 1)[:, None]
            hh = np.arange(Kk)[None, :]
            local = nn * Kk + hh  # row-major (n, h) grid
            own_out = c_k[:, None] * self.plan.w_out[k][None, :]
            if sources:
                keep = None  # every row has at least one appended term
            else:
                phase_any = (self.plan.phase_in[k] != 0.0).any(axis=0)
                keep = (
                    (own_out != 0.0)
                    | (nn < N)
                    | ((c_k[:, None] != 0.0) & phase_any[None, :])
                )
            grp = eq.rows(
                (N + 1) * Kk,
                0.0,
                f"A[k={k},n=%d,h=%d]",
                (np.broadcast_to(nn, (N + 1, Kk)), np.broadcast_to(hh, (N + 1, Kk))),
                keep=keep,
            )
            # OUT: station k's own transitions leaving the set.
            eq.entries(grp, local, vi.pi(k, nn, hh), own_out)
            # OUT: arrivals from j != k push n -> n+1 (rows n < N).
            n_lo = np.arange(N)[:, None]
            for j in sources:
                self._source_block(
                    eq, grp, n_lo * Kk + hh, j, k, n_lo, hh, routing[j, k]
                )
            # IN: same-level phase changes g -> h.
            gg = np.arange(Kk)[None, None, :]
            eq.entries(
                grp,
                local[..., None],
                vi.pi(k, nn[..., None], gg),
                -c_k[:, None, None] * self.plan.phase_in[k].T[None, :, :],
            )
            # IN: from level n-1 via an arrival (rows n >= 1).
            n_hi = np.arange(1, N + 1)[:, None]
            for j in sources:
                self._source_block(
                    eq, grp, n_hi * Kk + hh, j, k, n_hi - 1, hh, -routing[j, k]
                )
            # IN: from level n+1 via a completion routed away, g -> h.
            eq.entries(
                grp,
                (n_lo * Kk + hh)[..., None],
                vi.pi(k, n_lo[..., None] + 1, gg),
                -(c_k[1:, None, None] * ((1.0 - qkk) * sd.D1.T)[None, :, :]),
            )

    def _family_C(self) -> None:
        N, vi, eq = self.N, self.vi, self.eq
        for j in range(self.plan.M):
            Kj = self.plan.stations[j].K
            for k in range(self.plan.M):
                if j == k:
                    continue
                Kk = self.plan.stations[k].K
                nn = np.arange(N + 1)[:, None]
                hh = np.arange(Kk)[None, :]
                aa = np.arange(Kj)[None, None, :]
                local = nn * Kk + hh
                # C1: sum_a (V + W)_jk(a, n, h) = pi_k(n, h)
                grp = eq.rows(
                    (N + 1) * Kk,
                    0.0,
                    f"C1[j={j},k={k},n=%d,h=%d]",
                    (np.broadcast_to(nn, local.shape),
                     np.broadcast_to(hh, local.shape)),
                )
                eq.entries(
                    grp, local[..., None],
                    vi.V(j, k, aa, nn[..., None], hh[..., None]), 1.0,
                )
                eq.entries(
                    grp, local[..., None],
                    vi.W(j, k, aa, nn[..., None], hh[..., None]), 1.0,
                )
                eq.entries(grp, local, vi.pi(k, nn, hh), -1.0)
                # C2: sum_{n,h} V_jk(a, n, h) = sum_{n>=1} pi_j(n, a)
                a_rows = np.arange(Kj)
                n_pos = np.arange(1, N + 1)[None, :]
                grid_a = a_rows[:, None, None]
                grp = eq.rows(Kj, 0.0, f"C2[j={j},k={k},a=%d]", (a_rows,))
                eq.entries(
                    grp, grid_a,
                    vi.V(j, k, grid_a, nn[None, :, :], hh[None, :, :]), 1.0,
                )
                eq.entries(
                    grp, a_rows[:, None], vi.pi(j, n_pos, a_rows[:, None]), -1.0
                )
                # C3: sum_{n,h} W_jk(a, n, h) = pi_j(0, a)
                grp = eq.rows(Kj, 0.0, f"C3[j={j},k={k},a=%d]", (a_rows,))
                eq.entries(
                    grp, grid_a,
                    vi.W(j, k, grid_a, nn[None, :, :], hh[None, :, :]), 1.0,
                )
                eq.entries(grp, a_rows, vi.pi(j, 0, a_rows), -1.0)

    def _family_D(self) -> None:
        N, vi, eq = self.N, self.vi, self.eq
        for j in range(self.plan.M):
            for k in range(j + 1, self.plan.M):
                Kj = self.plan.stations[j].K
                Kk = self.plan.stations[k].K
                aa = np.arange(Kj)[:, None]
                hh = np.arange(Kk)[None, :]
                local = aa * Kk + hh
                lbl = (np.broadcast_to(aa, local.shape),
                       np.broadcast_to(hh, local.shape))
                n_pos = np.arange(1, N + 1)[None, None, :]
                # D1: P[both busy, h_j=a, h_k=h] two ways.
                grp = eq.rows(
                    Kj * Kk, 0.0, f"D1[j={j},k={k},a=%d,h=%d]", lbl
                )
                eq.entries(
                    grp, local[..., None],
                    vi.V(j, k, aa[..., None], n_pos, hh[..., None]), 1.0,
                )
                eq.entries(
                    grp, local[..., None],
                    vi.V(k, j, hh[..., None], n_pos, aa[..., None]), -1.0,
                )
                # D2: V_jk(a, 0, h) = sum_{m>=1} W_kj(h, m, a)
                grp = eq.rows(
                    Kj * Kk, 0.0, f"D2[j={j},k={k},a=%d,h=%d]", lbl
                )
                eq.entries(grp, local, vi.V(j, k, aa, 0, hh), 1.0)
                eq.entries(
                    grp, local[..., None],
                    vi.W(k, j, hh[..., None], n_pos, aa[..., None]), -1.0,
                )
                # D3: W_jk(a, 0, h) = W_kj(h, 0, a)
                grp = eq.rows(
                    Kj * Kk, 0.0, f"D3[j={j},k={k},a=%d,h=%d]", lbl
                )
                eq.entries(grp, local, vi.W(j, k, aa, 0, hh), 1.0)
                eq.entries(grp, local, vi.W(k, j, hh, 0, aa), -1.0)

    def _family_E(self) -> None:
        N, vi, eq = self.N, self.vi, self.eq
        for k in range(self.plan.M):
            Kk = self.plan.stations[k].K
            nn = np.arange(N + 1)[:, None]
            hh = np.arange(Kk)[None, :]
            grp = eq.rows(1, 1.0, f"E1[k={k}]")
            eq.entries(grp, 0, vi.pi(k, nn, hh), 1.0)

    def _family_G(self) -> None:
        N, vi, eq, ub = self.N, self.vi, self.eq, self.ub
        M = self.plan.M
        # G1: sum_{j != k} sum_a G_jk(a, n, h) = (N - n) pi_k(n, h)
        for k in range(M):
            others = [j for j in range(M) if j != k]
            if not others:
                continue
            Kk = self.plan.stations[k].K
            nn = np.arange(N + 1)[:, None]
            hh = np.arange(Kk)[None, :]
            local = nn * Kk + hh
            grp = eq.rows(
                (N + 1) * Kk,
                0.0,
                f"G1[k={k},n=%d,h=%d]",
                (np.broadcast_to(nn, local.shape),
                 np.broadcast_to(hh, local.shape)),
            )
            for j in others:
                aa = np.arange(self.plan.stations[j].K)[None, None, :]
                eq.entries(
                    grp, local[..., None],
                    vi.G(j, k, aa, nn[..., None], hh[..., None]), 1.0,
                )
            eq.entries(grp, local, vi.pi(k, nn, hh), -(N - nn).astype(float))
        # G2/G3: population conditioned on source-station busy/idle state.
        for j in range(M):
            others = [k for k in range(M) if k != j]
            if not others:
                continue
            Kj = self.plan.stations[j].K
            a_rows = np.arange(Kj)
            n_pos = np.arange(1, N + 1)[None, :]
            grp2 = eq.rows(Kj, 0.0, f"G2[j={j},a=%d]", (a_rows,))
            eq.entries(
                grp2, a_rows[:, None],
                vi.pi(j, n_pos, a_rows[:, None]),
                n_pos.astype(float) - float(N),
            )
            for k in others:
                Kk = self.plan.stations[k].K
                nn = np.arange(N + 1)[None, :, None]
                hh = np.arange(Kk)[None, None, :]
                eq.entries(
                    grp2, a_rows[:, None, None],
                    vi.V(j, k, a_rows[:, None, None], nn, hh),
                    nn.astype(float),
                )
            # G3: sum_k sum_{n,h} n W_jk(a,n,h) = N pi_j(0,a)
            grp3 = eq.rows(Kj, 0.0, f"G3[j={j},a=%d]", (a_rows,))
            eq.entries(grp3, a_rows, vi.pi(j, 0, a_rows), -float(N))
            for k in others:
                Kk = self.plan.stations[k].K
                nn = np.arange(N + 1)[None, :, None]
                hh = np.arange(Kk)[None, None, :]
                eq.entries(
                    grp3, a_rows[:, None, None],
                    vi.W(j, k, a_rows[:, None, None], nn, hh),
                    nn.astype(float),
                )
        # Sandwich: V <= G <= (N - n) V, per source phase.
        for j in range(M):
            Kj = self.plan.stations[j].K
            for k in range(M):
                if j == k:
                    continue
                Kk = self.plan.stations[k].K
                nn = np.arange(N + 1)[:, None, None]
                hh = np.arange(Kk)[None, :, None]
                aa = np.arange(Kj)[None, None, :]
                local = (nn * Kk + hh) * Kj + aa
                shape = (N + 1, Kk, Kj)
                lbl = (
                    np.broadcast_to(aa, shape),
                    np.broadcast_to(nn, shape),
                    np.broadcast_to(hh, shape),
                )
                v_cols = vi.V(j, k, aa, nn, hh)
                g_cols = vi.G(j, k, aa, nn, hh)
                # S1: V - G <= 0
                grp = ub.rows(
                    (N + 1) * Kk * Kj, 0.0,
                    f"S1[j={j},k={k},a=%d,n=%d,h=%d]", lbl,
                )
                ub.entries(grp, local, v_cols, 1.0)
                ub.entries(grp, local, g_cols, -1.0)
                # S2: G - (N - n) V <= 0
                grp = ub.rows(
                    (N + 1) * Kk * Kj, 0.0,
                    f"S2[j={j},k={k},a=%d,n=%d,h=%d]", lbl,
                )
                ub.entries(grp, local, g_cols, 1.0)
                ub.entries(grp, local, v_cols, -(N - nn).astype(float))
        # G4: moment consistency per ordered pair and source phase.
        for j in range(M):
            Kj = self.plan.stations[j].K
            a_rows = np.arange(Kj)
            n_pos = np.arange(1, N + 1)[None, :]
            for k in range(M):
                if j == k:
                    continue
                Kk = self.plan.stations[k].K
                nn = np.arange(N + 1)[None, :, None]
                hh = np.arange(Kk)[None, None, :]
                grp = eq.rows(Kj, 0.0, f"G4[j={j},k={k},a=%d]", (a_rows,))
                eq.entries(
                    grp, a_rows[:, None, None],
                    vi.G(j, k, a_rows[:, None, None], nn, hh), 1.0,
                )
                eq.entries(
                    grp, a_rows[:, None],
                    vi.pi(j, n_pos, a_rows[:, None]),
                    -n_pos.astype(float),
                )

    def _family_triples(self) -> None:
        N, vi, eq, ub = self.N, self.vi, self.eq, self.ub
        M = self.plan.M
        K = [sd.K for sd in self.plan.stations]
        for i in range(M):
            for j in range(M):
                for k in range(M):
                    if len({i, j, k}) != 3:
                        continue
                    Ki, Kj, Kk = K[i], K[j], K[k]
                    nn = np.arange(N + 1)
                    hh = np.arange(Kk)
                    # SC1: sum_a S_ijk(e,a,n,h) = V_ik(e,n,h), rows (e,n,h)
                    ee = np.arange(Ki)[:, None, None]
                    n3 = nn[None, :, None]
                    h3 = hh[None, None, :]
                    local = (ee * (N + 1) + n3) * Kk + h3
                    shape = (Ki, N + 1, Kk)
                    grp = eq.rows(
                        Ki * (N + 1) * Kk, 0.0,
                        f"SC1[i={i},j={j},k={k},e=%d,n=%d,h=%d]",
                        (np.broadcast_to(ee, shape), np.broadcast_to(n3, shape),
                         np.broadcast_to(h3, shape)),
                    )
                    aa4 = np.arange(Kj)[None, None, None, :]
                    eq.entries(
                        grp, local[..., None],
                        vi.S(i, j, k, ee[..., None], aa4, n3[..., None],
                             h3[..., None]),
                        1.0,
                    )
                    eq.entries(grp, local, vi.V(i, k, ee, n3, h3), -1.0)
                    # Rows (a, n, h): SC2/SC3 (ub), TC4/TC5 (ub), TC1 (ub).
                    aa = np.arange(Kj)[:, None, None]
                    local = (aa * (N + 1) + n3) * Kk + h3
                    shape = (Kj, N + 1, Kk)
                    lbl = (np.broadcast_to(aa, shape),
                           np.broadcast_to(n3, shape),
                           np.broadcast_to(h3, shape))
                    ee4 = np.arange(Ki)[None, None, None, :]
                    s_cols = vi.S(i, j, k, ee4, aa[..., None], n3[..., None],
                                  h3[..., None])
                    t_cols = vi.T(i, j, k, ee4, aa[..., None], n3[..., None],
                                  h3[..., None])
                    w_ik = vi.W(i, k, ee4, n3[..., None], h3[..., None])
                    v_jk = vi.V(j, k, aa, n3, h3)
                    w_jk = vi.W(j, k, aa, n3, h3)
                    g_jk = vi.G(j, k, aa, n3, h3)
                    local4 = local[..., None]
                    count = Kj * (N + 1) * Kk
                    # SC2: sum_e S <= (V+W)_jk(a,n,h)
                    grp = ub.rows(
                        count, 0.0,
                        f"SC2[i={i},j={j},k={k},a=%d,n=%d,h=%d]", lbl,
                    )
                    ub.entries(grp, local4, s_cols, 1.0)
                    ub.entries(grp, local, v_jk, -1.0)
                    ub.entries(grp, local, w_jk, -1.0)
                    # SC3: (V+W)_jk - sum_e S <= sum_e W_ik(e,n,h)
                    grp = ub.rows(
                        count, 0.0,
                        f"SC3[i={i},j={j},k={k},a=%d,n=%d,h=%d]", lbl,
                    )
                    ub.entries(grp, local, v_jk, 1.0)
                    ub.entries(grp, local, w_jk, 1.0)
                    ub.entries(grp, local4, s_cols, -1.0)
                    ub.entries(grp, local4, w_ik, -1.0)
                    # TC4: sum_e T <= G_jk(a,n,h)
                    grp = ub.rows(
                        count, 0.0,
                        f"TC4[i={i},j={j},k={k},a=%d,n=%d,h=%d]", lbl,
                    )
                    ub.entries(grp, local4, t_cols, 1.0)
                    ub.entries(grp, local, g_jk, -1.0)
                    # TC5: G_jk - sum_e T <= (N-n) sum_e W_ik
                    grp = ub.rows(
                        count, 0.0,
                        f"TC5[i={i},j={j},k={k},a=%d,n=%d,h=%d]", lbl,
                    )
                    ub.entries(grp, local, g_jk, 1.0)
                    ub.entries(grp, local4, t_cols, -1.0)
                    ub.entries(
                        grp, local4, w_ik,
                        -(N - n3[..., None]).astype(float),
                    )
                    # TC1: T <= (N-n-1) S pointwise, rows (a, n, h, e).
                    cap = np.clip(N - 1 - nn, 0, None).astype(float)
                    local_e = local4 * Ki + ee4
                    shape_e = (Kj, N + 1, Kk, Ki)
                    grp = ub.rows(
                        count * Ki, 0.0,
                        f"TC1[i={i},j={j},k={k},e=%d,a=%d,n=%d,h=%d]",
                        (np.broadcast_to(ee4, shape_e),
                         np.broadcast_to(aa[..., None], shape_e),
                         np.broadcast_to(n3[..., None], shape_e),
                         np.broadcast_to(h3[..., None], shape_e)),
                    )
                    ub.entries(grp, local_e, t_cols, 1.0)
                    ub.entries(
                        grp, local_e, s_cols,
                        -cap[None, :, None, None],
                    )
                    # SC4 / TC3: marginalize k away, rows (e, a).
                    e2 = np.arange(Ki)[:, None]
                    a2 = np.arange(Kj)[None, :]
                    local = e2 * Kj + a2
                    shape2 = (Ki, Kj)
                    lbl2 = (np.broadcast_to(e2, shape2),
                            np.broadcast_to(a2, shape2))
                    n4 = nn[None, None, :, None]
                    h4 = hh[None, None, None, :]
                    s_all = vi.S(i, j, k, e2[..., None, None],
                                 a2[..., None, None], n4, h4)
                    t_all = vi.T(i, j, k, e2[..., None, None],
                                 a2[..., None, None], n4, h4)
                    v_ij = vi.V(i, j, e2[..., None], nn[None, None, :],
                                a2[..., None])
                    grp = eq.rows(
                        Ki * Kj, 0.0,
                        f"SC4[i={i},j={j},k={k},e=%d,a=%d]", lbl2,
                    )
                    eq.entries(grp, local[..., None, None], s_all, 1.0)
                    eq.entries(grp, local[..., None], v_ij, -1.0)
                    grp = eq.rows(
                        Ki * Kj, 0.0,
                        f"TC3[i={i},j={j},k={k},e=%d,a=%d]", lbl2,
                    )
                    eq.entries(grp, local[..., None, None], t_all, 1.0)
                    eq.entries(
                        grp, local[..., None], v_ij,
                        -nn[None, None, :].astype(float),
                    )
        # TC2: population identity conditioned on (i busy, k state).
        for i in range(M):
            Ki = K[i]
            for k in range(M):
                if i == k:
                    continue
                Kk = K[k]
                js = [j for j in range(M) if j not in (i, k)]
                ee = np.arange(Ki)[:, None, None]
                n3 = np.arange(N + 1)[None, :, None]
                h3 = np.arange(Kk)[None, None, :]
                local = (ee * (N + 1) + n3) * Kk + h3
                shape = (Ki, N + 1, Kk)
                grp = eq.rows(
                    Ki * (N + 1) * Kk, 0.0,
                    f"TC2[i={i},k={k},e=%d,n=%d,h=%d]",
                    (np.broadcast_to(ee, shape), np.broadcast_to(n3, shape),
                     np.broadcast_to(h3, shape)),
                )
                for j in js:
                    aa4 = np.arange(K[j])[None, None, None, :]
                    eq.entries(
                        grp, local[..., None],
                        vi.T(i, j, k, ee[..., None], aa4, n3[..., None],
                             h3[..., None]),
                        1.0,
                    )
                eq.entries(
                    grp, local, vi.V(i, k, ee, n3, h3),
                    -(N - n3).astype(float),
                )
                eq.entries(grp, local, vi.G(i, k, ee, n3, h3), 1.0)

    def _family_H(self) -> None:
        N, vi, eq = self.N, self.vi, self.eq
        routing = self.plan.routing
        for j, k, third in self.plan.h_pairs:
            sj = self.plan.stations[j]
            sk = self.plan.stations[k]
            Kj, Kk = sj.K, sk.K
            qkk = routing[k, k]
            p_jj = routing[j, j]
            p_jk = routing[j, k]
            p_kj = routing[k, j]
            p_other = 1.0 - p_jj - p_jk
            c_k = self.c[k]
            aa = np.arange(Kj)[:, None, None]
            nn = np.arange(N + 1)[None, :, None]
            hh = np.arange(Kk)[None, None, :]
            local = (aa * (N + 1) + nn) * Kk + hh
            shape = (Kj, N + 1, Kk)
            grp = eq.rows(
                Kj * (N + 1) * Kk, 0.0,
                f"H[j={j},k={k},a=%d,n=%d,h=%d]",
                (np.broadcast_to(aa, shape), np.broadcast_to(nn, shape),
                 np.broadcast_to(hh, shape)),
            )
            g_here = vi.G(j, k, aa, nn, hh)
            # (1) j completes: loss at rate e_j(a); gains by routing case.
            eq.entries(grp, local, g_here, -sj.e[aa])
            al4 = np.arange(Kj)[None, None, None, :]
            aa4 = aa[..., None]  # the row's source phase, 4-dim aligned
            d1_in = sj.D1.T[aa4, al4]  # [a, ..., alpha]: alpha -> a rate
            g_al = vi.G(j, k, al4, nn[..., None], hh[..., None])
            v_al = vi.V(j, k, al4, nn[..., None], hh[..., None])
            local4 = local[..., None]
            if p_jj > 0.0:
                eq.entries(grp, local4, g_al, p_jj * d1_in)
            if p_other > 0.0:
                eq.entries(grp, local4, g_al, p_other * d1_in)
                eq.entries(grp, local4, v_al, -p_other * d1_in)
            if p_jk > 0.0:
                n_hi = np.arange(1, N + 1)[None, :, None]
                loc_hi = ((aa * (N + 1) + n_hi) * Kk + hh)[..., None]
                g_lo = vi.G(j, k, al4, n_hi[..., None] - 1, hh[..., None])
                v_lo = vi.V(j, k, al4, n_hi[..., None] - 1, hh[..., None])
                eq.entries(grp, loc_hi, g_lo, p_jk * d1_in)
                eq.entries(grp, loc_hi, v_lo, -p_jk * d1_in)
            # (2) j hidden phase transitions.
            d0_off = sj.D0.copy()
            np.fill_diagonal(d0_off, 0.0)
            eq.entries(grp, local4, g_al, d0_off.T[aa4, al4])
            eq.entries(grp, local, g_here, -sj.d0_out[aa])
            # (3) k transitions at level n (rate scale c_k).
            own_w = (
                (1.0 - qkk) * sk.e
                + qkk * (sk.e - np.diag(sk.D1))
                + sk.d0_out
            )
            eq.entries(grp, local, g_here, -c_k[nn] * own_w[hh])
            gg = np.arange(Kk)[None, None, None, :]
            eq.entries(
                grp, local4,
                vi.G(j, k, aa[..., None], nn[..., None], gg),
                c_k[nn][..., None] * self.plan.phase_in[k].T[hh[..., None], gg],
            )
            n_lo = np.arange(N)[None, :, None]
            loc_lo = ((aa * (N + 1) + n_lo) * Kk + hh)[..., None]
            coeff = c_k[n_lo + 1][..., None] * sk.D1.T[hh[..., None], gg]
            g_up = vi.G(j, k, aa[..., None], n_lo[..., None] + 1, gg)
            eq.entries(grp, loc_lo, g_up, (1.0 - qkk) * coeff)
            if p_kj > 0.0:
                v_up = vi.V(j, k, aa[..., None], n_lo[..., None] + 1, gg)
                w_up = vi.W(j, k, aa[..., None], n_lo[..., None] + 1, gg)
                eq.entries(grp, loc_lo, v_up, p_kj * coeff)
                eq.entries(grp, loc_lo, w_up, p_kj * coeff)
            # (4) third-party arrivals into k (T terms).
            for i in third:
                p_ik = routing[i, k]
                if p_ik <= 0.0:
                    continue
                e_i = self.plan.stations[i].e
                eps = np.arange(self.plan.stations[i].K)[None, None, None, :]
                n_hi = np.arange(1, N + 1)[None, :, None]
                loc_hi = ((aa * (N + 1) + n_hi) * Kk + hh)[..., None]
                eq.entries(
                    grp, loc_hi,
                    vi.T(i, j, k, eps, aa[..., None], n_hi[..., None] - 1,
                         hh[..., None]),
                    p_ik * e_i[eps],
                )
                eq.entries(
                    grp, local4,
                    vi.T(i, j, k, eps, aa[..., None], nn[..., None],
                         hh[..., None]),
                    -p_ik * e_i[eps],
                )
            # (5) third-party arrivals into j (S terms).
            for i in third:
                p_ij = routing[i, j]
                if p_ij <= 0.0:
                    continue
                e_i = self.plan.stations[i].e
                eps = np.arange(self.plan.stations[i].K)[None, None, None, :]
                eq.entries(
                    grp, local4,
                    vi.S(i, j, k, eps, aa[..., None], nn[..., None],
                         hh[..., None]),
                    p_ij * e_i[eps],
                )

    def _family_redundant(self) -> None:
        N, vi, eq = self.N, self.vi, self.eq
        routing = self.plan.routing
        # Family B: phase-aggregated cut balance at each level n >= 1.
        for k in range(self.plan.M):
            sd = self.plan.stations[k]
            Kk = sd.K
            qkk = routing[k, k]
            c_k = self.c[k]
            n_rows = np.arange(1, N + 1)
            grp = eq.rows(N, 0.0, f"B[k={k},n=%d]", (n_rows,))
            nn = n_rows[:, None]
            hh = np.arange(Kk)[None, :]
            local = np.broadcast_to(np.arange(N)[:, None], (N, Kk))
            for j in self.plan.sources[k]:
                self._source_block(
                    eq, grp, local, j, k, nn - 1, hh, routing[j, k]
                )
            eq.entries(
                grp, local, vi.pi(k, nn, hh),
                -c_k[nn] * (1.0 - qkk) * sd.e[hh],
            )
        # Family F: throughput flow balance X_k = sum_j p_jk X_j.
        xexprs = []
        for k in range(self.plan.M):
            sd = self.plan.stations[k]
            nn = np.arange(N + 1)[:, None]
            hh = np.arange(sd.K)[None, :]
            cols = np.asarray(vi.pi(k, nn, hh)).ravel()
            vals = (self.c[k][:, None] * sd.e[None, :]).ravel()
            xexprs.append((cols, vals))
        for k in range(self.plan.M - 1):
            grp = eq.rows(1, 0.0, f"F[k={k}]")
            eq.entries(grp, 0, xexprs[k][0], xexprs[k][1])
            for j in range(self.plan.M):
                if routing[j, k] > 0.0:
                    eq.entries(
                        grp, 0, xexprs[j][0], -routing[j, k] * xexprs[j][1]
                    )

    # ------------------------------------------------------------------ #
    def run(self) -> ConstraintSystem:
        """Emit every family and finalize the sparse system."""
        self._family_A()
        self._family_C()
        self._family_D()
        self._family_E()
        self._family_G()
        if self.plan.triples:
            self._family_triples()
        self._family_H()
        if self.plan.include_redundant:
            self._family_redundant()
        A_eq, b_eq = self.eq.build(self.vi.size)
        A_ub, b_ub = self.ub.build(self.vi.size)
        lb, hi = self.vi.default_bounds()
        return ConstraintSystem(
            vi=self.vi,
            A_eq=A_eq,
            b_eq=b_eq,
            A_ub=A_ub,
            b_ub=b_ub,
            lb=lb,
            ub=hi,
            eq_labels=self.eq.labels,
            ub_labels=self.ub.labels,
        )


# ---------------------------------------------------------------------- #
# the plan cache
# ---------------------------------------------------------------------- #
class AssemblyCache:
    """Keyed LRU store of :class:`AssemblyPlan` objects.

    Plans are small (station matrices plus derived phase patterns), so a
    handful of topologies fit comfortably; the cache exists to make
    population sweeps pay the per-topology pattern computation exactly
    once per process/worker.
    """

    def __init__(self, maxsize: int = 16) -> None:
        self.maxsize = int(maxsize)
        self._plans: "OrderedDict[str, AssemblyPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def plan_for(
        self,
        network: Network,
        triples: "bool | None" = None,
        include_redundant: bool = False,
    ) -> AssemblyPlan:
        """Cached plan for this network's topology (built on miss)."""
        key = topology_key(network, triples, include_redundant)
        tele = obs.get_telemetry()
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            tele.counter("assembly_cache.hit")
            self._plans.move_to_end(key)
            return plan
        self.misses += 1
        tele.counter("assembly_cache.miss")
        plan = AssemblyPlan(
            network, triples=triples, include_redundant=include_redundant
        )
        self._plans[key] = plan
        while len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)
            tele.counter("assembly_cache.eviction")
        return plan

    def __len__(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        """Drop every cached plan and reset the hit/miss counters."""
        self._plans.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        """Hit/miss counters plus current plan count."""
        return {"hits": self.hits, "misses": self.misses, "plans": len(self)}


_default_cache: "AssemblyCache | None" = None


def get_assembly_cache() -> AssemblyCache:
    """The process-wide default assembly cache (created lazily)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = AssemblyCache()
    return _default_cache


def assemble(
    network: Network,
    vi: "VariableIndex | None" = None,
    include_redundant: bool = False,
    triples: "bool | None" = None,
    cache: "AssemblyCache | None" = None,
) -> ConstraintSystem:
    """Assemble the constraint system through the (default) plan cache.

    Drop-in equivalent of the seed :func:`build_constraints` signature with
    an extra ``cache`` knob; ``cache=None`` uses the process-wide default
    (pass a fresh :class:`AssemblyCache` for isolation, e.g. in tests).
    """
    cache = cache if cache is not None else get_assembly_cache()
    plan = cache.plan_for(
        network, triples=triples, include_redundant=include_redundant
    )
    return plan.assemble(network, vi=vi)


# ---------------------------------------------------------------------- #
# canonicalization (the equivalence-test contract)
# ---------------------------------------------------------------------- #
def canonical_form(system: ConstraintSystem) -> dict:
    """Row-order-independent canonical form of a constraint system.

    Rows are permuted into sorted-label order (labels are unique per row),
    which makes two assemblies comparable bit-for-bit regardless of family
    emission order.  Returns the sorted CSR pieces plus rhs/labels/bounds.
    """

    def _sorted(A: sp.csr_matrix, b: np.ndarray, labels) -> tuple:
        labels = list(labels)
        if len(labels) != A.shape[0]:
            raise ValueError("label count does not match row count")
        order = np.argsort(np.asarray(labels, dtype=object), kind="stable")
        A = A[order].tocsr()
        A.sort_indices()
        return A, b[order], [labels[i] for i in order]

    A_eq, b_eq, eq_labels = _sorted(system.A_eq, system.b_eq, system.eq_labels)
    A_ub, b_ub, ub_labels = _sorted(system.A_ub, system.b_ub, system.ub_labels)
    return {
        "A_eq": A_eq,
        "b_eq": b_eq,
        "eq_labels": eq_labels,
        "A_ub": A_ub,
        "b_ub": b_ub,
        "ub_labels": ub_labels,
        "lb": system.lb,
        "ub": system.ub,
    }

"""Linear performance metrics over the marginal variable space.

The paper bounds any index expressible as a linear function ``f(pi)`` of
the marginal probabilities: throughput, utilization, queue-length moments
(mean, variance via moments, higher moments).  Response times are *derived*
from throughput bounds through Little's law (``R_min = N / X_max``), which
is how :func:`repro.core.bounds.response_time_bounds` does it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.variables import VariableIndex
from repro.network.model import Network

__all__ = [
    "LinearMetric",
    "throughput_metric",
    "utilization_metric",
    "queue_length_metric",
    "queue_length_moment_metric",
    "idle_probability_metric",
    "system_throughput_metric",
]


@dataclass(frozen=True)
class LinearMetric:
    """A metric ``value(x) = coeffs . x + constant`` over LP variables."""

    name: str
    cols: np.ndarray
    vals: np.ndarray
    constant: float = 0.0

    def dense(self, n_vars: int) -> np.ndarray:
        """Dense coefficient vector (for ``scipy.optimize.linprog``)."""
        c = np.zeros(n_vars)
        np.add.at(c, self.cols, self.vals)
        return c

    def evaluate(self, x: np.ndarray) -> float:
        """Evaluate the metric at a variable assignment."""
        return float(x[self.cols] @ self.vals) + self.constant


def _station_grid(network: Network, k: int):
    N = network.population
    Kk = network.stations[k].phases
    nn, hh = np.meshgrid(np.arange(N + 1), np.arange(Kk), indexing="ij")
    return nn, hh


def throughput_metric(network: Network, vi: VariableIndex, k: int) -> LinearMetric:
    """Departure rate of station k: ``sum_{n,h} c_k(n) e_k(h) pi_k(n,h)``."""
    st = network.stations[k]
    nn, hh = _station_grid(network, k)
    c_k = st.rate_scale(np.arange(network.population + 1))
    e_k = st.service.D1.sum(axis=1)
    vals = (c_k[:, None] * e_k[None, :]).ravel()
    return LinearMetric(
        name=f"throughput[{st.name}]",
        cols=np.asarray(vi.pi(k, nn.ravel(), hh.ravel())),
        vals=vals,
    )


def utilization_metric(network: Network, vi: VariableIndex, k: int) -> LinearMetric:
    """Busy probability ``P[n_k >= 1] = 1 - sum_h pi_k(0, h)``."""
    st = network.stations[k]
    h = np.arange(st.phases)
    return LinearMetric(
        name=f"utilization[{st.name}]",
        cols=np.asarray(vi.pi(k, 0, h)),
        vals=-np.ones(st.phases),
        constant=1.0,
    )


def idle_probability_metric(
    network: Network, vi: VariableIndex, k: int
) -> LinearMetric:
    """``P[n_k = 0]`` — complements the utilization metric."""
    st = network.stations[k]
    h = np.arange(st.phases)
    return LinearMetric(
        name=f"idle[{st.name}]",
        cols=np.asarray(vi.pi(k, 0, h)),
        vals=np.ones(st.phases),
    )


def queue_length_metric(network: Network, vi: VariableIndex, k: int) -> LinearMetric:
    """Mean queue length ``E[n_k]``."""
    return queue_length_moment_metric(network, vi, k, order=1)


def queue_length_moment_metric(
    network: Network, vi: VariableIndex, k: int, order: int
) -> LinearMetric:
    """Raw queue-length moment ``E[n_k^order]``."""
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    st = network.stations[k]
    nn, hh = _station_grid(network, k)
    vals = (nn.ravel().astype(float)) ** order
    return LinearMetric(
        name=f"qlen^{order}[{st.name}]",
        cols=np.asarray(vi.pi(k, nn.ravel(), hh.ravel())),
        vals=vals,
    )


def system_throughput_metric(
    network: Network, vi: VariableIndex, reference: int = 0
) -> LinearMetric:
    """System throughput measured at the reference station (``v_ref = 1``)."""
    m = throughput_metric(network, vi, reference)
    return LinearMetric(
        name=f"system_throughput[ref={reference}]",
        cols=m.cols,
        vals=m.vals,
    )

"""Persistent warm-started HiGHS LP backend.

:func:`repro.core.lp.solve_lp_core` is stateless: every solve rebuilds the
HiGHS model from the scipy matrices, runs presolve from scratch, and throws
the optimal basis away.  On the marginal-balance polytopes that statelessness
is exactly where the time goes — ``BENCH_lp_scaling.json`` showed a single
M = 10, N = 25 bound pair at 35.9s while constraint assembly took 0.07s.

This module keeps the solver alive instead:

``PersistentLP``
    wraps one HiGHS instance over one :class:`ConstraintSystem`.  The model
    is passed to the solver once; subsequent objectives swap only the cost
    vector (``changeColsCost``) and the optimization sense.  The min/max
    pair of a metric reuses the optimal basis left by the first solve, and
    sweeps over adjacent populations warm-start from a *mapped* basis (see
    below).  The scipy ``linprog`` retry ladder (alternate algorithm, then
    simplex with presolve off) is preserved verbatim.

``choose_lp_method``
    the shared auto-method rule, re-tuned against this backend's
    measurements.  The seed inherited ``_IPM_THRESHOLD = 20_000``; measured
    on the ring-of-MAP(2) family, interior point already beats dual simplex
    at ~850 variables (0.16s vs 0.20s per pair) and wins by 4-6x from
    ~4,000 variables up (M = 10, N = 10: 38-72s per simplex solve vs 3-4s
    IPM).  The corrected threshold is 1,000.

``LPLineageStore``
    a process-wide map ``topology_key -> per-(metric, sense) basis
    snapshots``.  Adjacent sweep populations N -> N+1 solve near-identical
    polytopes; the store carries each lineage's last optimal basis between
    :class:`~repro.runtime.batch.BatchLPSolver` instances (and, because it
    is process-wide, between sweep points inside one worker process).

Warm-start mechanics: the variable layout of :class:`VariableIndex` gives
every block exactly one population-dependent axis, so old -> new column
index maps are a vectorized reshape; constraint rows are matched by their
exact labels (population-independent strings like ``"S1[j=0,k=1,...]"``).
Unmatched new columns start nonbasic at their lower bound, unmatched new
rows start basic (their slack enters the basis), and the basis is marked
``alien`` so HiGHS repairs the singular leftovers.  Measured on the
ring-of-MAP(2) lineages: 4-7x fewer simplex iterations than a cold solve
(195-315 against 1,193-1,747 at M = 3), values agreeing to 1e-15.  Warm
starts only materialize when the resolved method is simplex: interior
point ignores start bases, and a simplex start forced past the auto
threshold loses outright (an IPM-crossover-sourced basis warm-started
10.9k iterations against an 88-iteration cold IPM solve) — so above
``_IPM_THRESHOLD`` every solve runs cold interior point and the lineage
store is not consulted.

Backend discovery prefers a real ``highspy`` installation (the optional
``repro[highs]`` extra), falls back to the copy scipy >= 1.15 vendors for
its own ``linprog``, and finally to the stateless scipy path — so the
persistent backend is available wherever scipy's HiGHS is, and
``REPRO_LP_BACKEND=scipy`` forces the zero-dependency fallback.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.utils.errors import SolverError

__all__ = [
    "PersistentLP",
    "LPRunInfo",
    "LPLineageStore",
    "choose_lp_method",
    "get_lp_lineage_store",
    "highs_available",
    "highs_impl",
    "resolve_backend",
]


# ---------------------------------------------------------------------- #
# method selection (shared by both backends)
# ---------------------------------------------------------------------- #
#: Above this variable count, interior point beats HiGHS's dual simplex on
#: these highly degenerate balance polytopes.  Re-measured for the
#: persistent backend: IPM is already ahead at ~850 variables and wins by
#: 4-6x from ~4,000 up (the seed value of 20,000 left M = 10 sweeps on a
#: 6x-slower simplex path).
_IPM_THRESHOLD = 1_000

#: HiGHS ``simplex_strategy`` values: let HiGHS choose (dual) vs primal.
_SIMPLEX_STRATEGY_CHOOSE = 0
_SIMPLEX_STRATEGY_PRIMAL = 4


def choose_lp_method(n_variables: int) -> str:
    """Auto method for a cold solve: ``"highs"`` (dual simplex) for small
    systems, ``"highs-ipm"`` (interior point) past ``_IPM_THRESHOLD``."""
    return "highs" if n_variables <= _IPM_THRESHOLD else "highs-ipm"


# ---------------------------------------------------------------------- #
# backend discovery
# ---------------------------------------------------------------------- #
def _load_highs():
    """(module, Highs class, impl name) of the best available HiGHS binding."""
    try:
        import highspy  # optional dependency: the repro[highs] extra

        return highspy, highspy.Highs, "highspy"
    except ImportError:
        pass
    try:
        # scipy >= 1.15 vendors highspy for its own linprog; same pybind11
        # API surface, private location — hence the gated fallback.
        from scipy.optimize._highspy import _core

        cls = getattr(_core, "Highs", None) or _core._Highs
        return _core, cls, "scipy-vendored"
    except (ImportError, AttributeError):
        return None, None, None


_HIGHS_MOD, _HIGHS_CLS, _HIGHS_IMPL = _load_highs()


def highs_available() -> bool:
    """Whether the persistent HiGHS backend can run in this process."""
    return _HIGHS_MOD is not None


def highs_impl() -> "str | None":
    """``"highspy"`` | ``"scipy-vendored"`` | ``None`` (which binding)."""
    return _HIGHS_IMPL


def resolve_backend(backend: str = "auto") -> str:
    """Resolve a backend request to ``"highs"`` or ``"scipy"``.

    ``"auto"`` (the default everywhere) prefers the persistent HiGHS
    backend when a binding is importable and falls back to the stateless
    scipy path otherwise, so the optional dependency never becomes a
    requirement.  The ``REPRO_LP_BACKEND`` environment variable overrides
    ``"auto"`` (used by CI to pin the scipy leg); explicit arguments beat
    the environment.
    """
    if backend == "auto":
        env = os.environ.get("REPRO_LP_BACKEND", "").strip().lower()
        if env:
            backend = env
    if backend == "auto":
        return "highs" if highs_available() else "scipy"
    if backend == "highs":
        if not highs_available():
            raise SolverError(
                "LP backend 'highs' requested but no HiGHS binding is "
                "importable (pip install 'repro[highs]', or use "
                "backend='scipy')"
            )
        return "highs"
    if backend == "scipy":
        return "scipy"
    raise ValueError(
        f"unknown LP backend {backend!r}; expected 'auto', 'highs' or 'scipy'"
    )


# ---------------------------------------------------------------------- #
# the persistent solver
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class LPRunInfo:
    """Outcome of one :meth:`PersistentLP.solve`."""

    value: float
    x: np.ndarray
    sense: str
    method_used: str     # "highs" | "highs-ipm" (ladder step that succeeded)
    n_iterations: int    # simplex + ipm + crossover iterations
    n_fallbacks: int     # retry-ladder steps taken
    warm_started: bool


class PersistentLP:
    """One HiGHS model per constraint system, many objectives per model.

    Parameters
    ----------
    system:
        Assembled :class:`~repro.core.constraints.ConstraintSystem`.
    method:
        ``"auto"`` (every solve follows :func:`choose_lp_method`; warm
        starts then only materialize in the simplex regime) or an
        explicit ``"highs"`` / ``"highs-ipm"`` that every solve honors.
    """

    def __init__(self, system, method: str = "auto") -> None:
        if not highs_available():  # pragma: no cover - guarded by callers
            raise SolverError("PersistentLP requires a HiGHS binding")
        if method not in ("auto", "highs", "highs-ipm"):
            raise ValueError(
                f"unknown LP method {method!r}; expected 'auto', 'highs' "
                "or 'highs-ipm'"
            )
        self.system = system
        self.method = method
        self.n_variables = int(system.n_variables)
        self._col_indices = np.arange(self.n_variables, dtype=np.int32)
        self._have_basis = False
        self._h = _HIGHS_CLS()
        self._h.setOptionValue("output_flag", False)
        self._h.passModel(self._build_model())
        obs.get_telemetry().counter("lp.model_rebuild")

    # ------------------------------------------------------------------ #
    def _build_model(self):
        """The HiGHS LP: equalities stacked over inequalities, row-wise CSR."""
        hc = _HIGHS_MOD
        s = self.system
        A = sp.vstack([s.A_eq.tocsr(), s.A_ub.tocsr()], format="csr")
        m_ub = int(s.n_inequalities)
        lp = hc.HighsLp()
        lp.num_col_ = self.n_variables
        lp.num_row_ = int(A.shape[0])
        lp.col_cost_ = np.zeros(self.n_variables)
        lb = np.asarray(s.lb, dtype=float).copy()
        ub = np.asarray(s.ub, dtype=float).copy()
        lb[~np.isfinite(lb)] = -hc.kHighsInf
        ub[~np.isfinite(ub)] = hc.kHighsInf
        lp.col_lower_ = lb
        lp.col_upper_ = ub
        lp.row_lower_ = np.concatenate([s.b_eq, np.full(m_ub, -hc.kHighsInf)])
        lp.row_upper_ = np.concatenate([s.b_eq, s.b_ub])
        lp.a_matrix_.format_ = hc.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = A.indptr
        lp.a_matrix_.index_ = A.indices
        lp.a_matrix_.value_ = A.data
        return lp

    @property
    def n_rows(self) -> int:
        return int(self.system.n_rows)

    # ------------------------------------------------------------------ #
    def _resolve_method(self) -> str:
        if self.method != "auto":
            return self.method
        return choose_lp_method(self.n_variables)

    def _configure(self, method: str, presolve: bool = True) -> None:
        self._h.setOptionValue(
            "solver", "ipm" if method == "highs-ipm" else "simplex"
        )
        self._h.setOptionValue("presolve", "on" if presolve else "off")

    def _run_ok(self) -> bool:
        self._h.run()
        return self._h.getModelStatus() == _HIGHS_MOD.HighsModelStatus.kOptimal

    def solve(
        self,
        c: "np.ndarray | None" = None,
        sense: str = "min",
        warm_basis=None,
        reuse_basis: bool = False,
    ) -> LPRunInfo:
        """Optimize ``c @ x`` over the model in the given sense.

        ``warm_basis`` is a mapped :class:`HighsBasis` (see
        :func:`map_basis_snapshot`) to start from — dual simplex repairs
        the alien basis and finishes in a fraction of the cold iteration
        count when the basis comes from the same (metric, sense) at an
        adjacent population.  ``reuse_basis`` keeps whatever basis the
        previous solve of *this* object left and switches to *primal*
        simplex: the min/max-pair case, where the kept basis stays primal
        feasible because only the objective flipped (measured ~1.8x fewer
        iterations than a cold max).  With neither, the solver state is
        cleared — a basis carried across *different* objectives is poison
        (22.9k iterations against 8.4k cold), as is any simplex start on
        the big degenerate instances, so warm requests only materialize
        when the resolved method is simplex; interior point always runs
        cold.

        Raises :class:`SolverError` after the full retry ladder fails.
        """
        if sense not in ("min", "max"):
            raise ValueError(f"sense must be 'min' or 'max', got {sense!r}")
        hc = _HIGHS_MOD
        if c is not None:
            self._h.changeColsCost(
                self.n_variables, self._col_indices, np.asarray(c, dtype=float)
            )
        self._h.changeObjectiveSense(
            hc.ObjSense.kMinimize if sense == "min" else hc.ObjSense.kMaximize
        )

        want_warm = warm_basis is not None or (reuse_basis and self._have_basis)
        method = self._resolve_method()
        # A warm request only materializes on simplex: IPM ignores bases,
        # and forcing simplex past the auto threshold loses (measured).
        warm = want_warm and method == "highs"
        if warm and warm_basis is not None:
            self._h.setBasis(warm_basis)
        elif not (warm and reuse_basis):
            self._h.clearSolver()  # cold: drop any stale basis/solution
            warm = False
        self._configure(method)
        pair_reuse = warm and warm_basis is None
        if pair_reuse:
            self._h.setOptionValue(
                "simplex_strategy", _SIMPLEX_STRATEGY_PRIMAL
            )

        try:
            ok = self._run_ok()
        finally:
            if pair_reuse:
                self._h.setOptionValue(
                    "simplex_strategy", _SIMPLEX_STRATEGY_CHOOSE
                )
        method_used = method
        n_fallbacks = 0
        if not ok:
            # Same ladder as the stateless path: the alternate HiGHS
            # algorithm, then simplex with presolve disabled.  Each retry
            # starts cold — a basis that just failed must not leak in.
            tele = obs.get_telemetry()
            alternate = "highs" if method == "highs-ipm" else "highs-ipm"
            for meth, presolve in ((alternate, True), ("highs", False)):
                tele.counter("lp.retry_step")
                n_fallbacks += 1
                self._h.clearSolver()
                self._configure(meth, presolve=presolve)
                method_used = meth
                if self._run_ok():
                    ok = True
                    break
        # leave presolve on for whoever solves next
        self._h.setOptionValue("presolve", "on")
        if not ok:
            raise SolverError(
                f"persistent LP {sense} failed: model status "
                f"{self._h.getModelStatus()} after {n_fallbacks} retries"
            )

        info = self._h.getInfo()
        iterations = (
            int(info.simplex_iteration_count)
            + int(info.ipm_iteration_count)
            + int(info.crossover_iteration_count)
        )
        self._have_basis = bool(self._h.getBasis().valid)
        return LPRunInfo(
            value=float(self._h.getObjectiveValue()),
            x=np.asarray(self._h.getSolution().col_value, dtype=float),
            sense=sense,
            method_used=method_used,
            n_iterations=iterations,
            n_fallbacks=n_fallbacks,
            warm_started=warm,
        )

    # ------------------------------------------------------------------ #
    def basis_snapshot(self) -> "tuple[np.ndarray, np.ndarray] | None":
        """(column statuses, row statuses) as compact int8 arrays."""
        basis = self._h.getBasis()
        if not basis.valid:
            return None
        col = np.fromiter(map(int, basis.col_status), dtype=np.int8)
        row = np.fromiter(map(int, basis.row_status), dtype=np.int8)
        return col, row

    def make_basis(self, col_status: np.ndarray, row_status: np.ndarray):
        """A ``HighsBasis`` (marked alien) from int8 status arrays."""
        hc = _HIGHS_MOD
        basis = hc.HighsBasis()
        basis.col_status = [hc.HighsBasisStatus(int(s)) for s in col_status]
        basis.row_status = [hc.HighsBasisStatus(int(s)) for s in row_status]
        basis.valid = True
        basis.alien = True  # let HiGHS repair the mapped/singular leftovers
        return basis


# ---------------------------------------------------------------------- #
# population-lineage warm starts
# ---------------------------------------------------------------------- #
#: Population axis of each variable-block family in the
#: :class:`VariableIndex` layout — the single N-dependent dimension the
#: column mapping reshapes along.
_N_AXIS = {"pi": 0, "V": 1, "W": 1, "G": 1, "S": 2, "T": 2}


@dataclass(frozen=True)
class _ModelShape:
    """Everything basis mapping needs to know about one model's layout."""

    n_population: int
    n_variables: int
    blocks: "tuple[tuple[tuple, int, tuple[int, ...]], ...]"  # (key, off, shape)
    row_lut: "dict[str, int]"  # exact row label -> stacked row index


def model_shape(system) -> _ModelShape:
    """Layout snapshot of an assembled system (materializes row labels)."""
    labels = list(system.eq_labels) + list(system.ub_labels)
    return _ModelShape(
        n_population=int(system.vi.network.population),
        n_variables=int(system.n_variables),
        blocks=tuple(system.vi.blocks()),
        row_lut={lab: i for i, lab in enumerate(labels)},
    )


def map_basis_snapshot(
    old_shape: _ModelShape,
    old_col: np.ndarray,
    old_row: np.ndarray,
    new_shape: _ModelShape,
) -> "tuple[np.ndarray, np.ndarray]":
    """Map a basis between the models of two adjacent populations.

    Columns: every block has exactly one population axis (``_N_AXIS``), so
    the overlap ``n <= min(N_old, N_new)`` copies with one vectorized
    reshape per block; columns only the new model has start nonbasic at
    their lower bound (``kLower = 0``).  Rows: matched by exact label
    (labels are population-independent strings, so a row present in both
    models matches itself); rows only the new model has start basic
    (``kBasic = 1`` — their slack enters the basis).  The result is alien:
    HiGHS repairs it into a valid starting basis.
    """
    k_lower, k_basic = np.int8(0), np.int8(1)
    col_status = np.full(new_shape.n_variables, k_lower, dtype=np.int8)
    old_blocks = {key: (off, shp) for key, off, shp in old_shape.blocks}
    for key, off, shp in new_shape.blocks:
        hit = old_blocks.get(key)
        if hit is None:  # topology differs — caller keyed the store wrong
            continue
        ooff, oshp = hit
        ax = _N_AXIS[key[0]]
        n_copy = min(shp[ax], oshp[ax])
        sl_new = [slice(None)] * len(shp)
        sl_old = [slice(None)] * len(oshp)
        sl_new[ax] = sl_old[ax] = slice(0, n_copy)
        flat_new = (
            np.arange(np.prod(shp)).reshape(shp)[tuple(sl_new)] + off
        ).ravel()
        flat_old = (
            np.arange(np.prod(oshp)).reshape(oshp)[tuple(sl_old)] + ooff
        ).ravel()
        col_status[flat_new] = old_col[flat_old]

    row_status = np.full(len(new_shape.row_lut), k_basic, dtype=np.int8)
    old_lut = old_shape.row_lut
    for label, i in new_shape.row_lut.items():
        j = old_lut.get(label)
        if j is not None:
            row_status[i] = old_row[j]
    return col_status, row_status


class LPLineageStore:
    """Process-wide basis lineages: ``topology_key -> (metric, sense) -> basis``.

    One entry per topology (LRU-bounded); each ``(metric, sense)`` lineage
    holds the latest optimal basis snapshot together with the model shape
    it belongs to, so the next population's solver can map it.  Lives at
    process scope: inside a sweep worker every point shares the store, so
    serial and parallel sweeps both warm-start within their own process —
    warm starts change iteration counts, never optima, so serial and
    parallel results still agree to LP tolerance.
    """

    def __init__(self, maxsize: int = 8) -> None:
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        # The store is process-wide; registry methods may be driven from
        # threads (e.g. a thread-pooled harness), and a lookup's recency
        # bump racing a store's eviction loop would corrupt the LRU order.
        self._lock = threading.Lock()

    def lookup(
        self, topology_key: str, metric: str, sense: str
    ) -> "tuple[_ModelShape, np.ndarray, np.ndarray] | None":
        """Latest ``(shape, col_status, row_status)`` of a lineage, if any."""
        with self._lock:
            entry = self._entries.get(topology_key)
            if entry is None:
                return None
            self._entries.move_to_end(topology_key)
            return entry.get((metric, sense))

    def store(
        self,
        topology_key: str,
        metric: str,
        sense: str,
        shape: _ModelShape,
        col_status: np.ndarray,
        row_status: np.ndarray,
    ) -> None:
        with self._lock:
            entry = self._entries.get(topology_key)
            if entry is None:
                entry = self._entries[topology_key] = {}
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
            self._entries.move_to_end(topology_key)
            entry[(metric, sense)] = (shape, col_status, row_status)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_lineage_store = LPLineageStore()


def get_lp_lineage_store() -> LPLineageStore:
    """The process-wide lineage store (one per sweep worker process)."""
    return _lineage_store

"""LP front end: min/max of a linear metric over the marginal polytope.

The paper reports interior-point solve times (10 MAP(2) queues, N = 50,
about four minutes in 2008); we solve the same programs through HiGHS —
either the persistent warm-started backend of
:mod:`repro.core.lpbackend` (the default whenever a HiGHS binding is
importable) or the stateless ``scipy.optimize.linprog`` fallback.  The
``benchmarks/test_bench_lp_scaling.py`` harness reproduces the
scalability claim of Section 2.

Backend choice is provenance, not identity: both paths answer with the
same optima to LP tolerance, so cached results never fork on it (see
:mod:`repro.runtime.registry`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro import obs
from repro.core.constraints import ConstraintSystem
from repro.core.lpbackend import (
    _IPM_THRESHOLD,  # noqa: F401  (re-exported; the single tuned definition)
    PersistentLP,
    choose_lp_method,
    resolve_backend,
)
from repro.core.objectives import LinearMetric
from repro.utils.errors import SolverError

__all__ = ["LPSolution", "choose_lp_method", "optimize_metric", "solve_lp_core"]


@dataclass(frozen=True)
class LPSolution:
    """Optimal value (and argument) of one LP solve."""

    value: float
    x: np.ndarray
    sense: str  # "min" | "max"
    status: int
    n_iterations: int
    #: HiGHS algorithm that actually produced the optimum — the requested
    #: method, or the retry-ladder step that succeeded.
    method_used: str = ""


def solve_lp_core(
    c: np.ndarray,
    system: ConstraintSystem,
    method: str,
    bounds: np.ndarray | None = None,
):
    """One robust ``linprog`` call: min of ``c @ x`` over ``system``.

    HiGHS occasionally reports spurious infeasibility on the ill-conditioned
    instances this polytope produces (high-SCV MAP(2) moments put 4+ orders
    of magnitude between coefficients).  The exact constraints are feasible
    by construction, so on failure we walk a retry ladder — the alternate
    HiGHS algorithm, then simplex with presolve disabled — before giving up.

    ``bounds`` is the ``(n, 2)`` stacked variable-bound array; passing it in
    lets batched callers build it once per system instead of per solve.

    Returns ``(res, method_used)``: the scipy ``OptimizeResult`` untouched,
    plus the name of the HiGHS algorithm that actually produced it (the
    requested ``method``, or the retry-ladder step that succeeded).
    """
    if bounds is None:
        bounds = np.column_stack([system.lb, system.ub])

    def _solve(meth: str, options=None):
        return linprog(
            c,
            A_eq=system.A_eq if system.n_equalities else None,
            b_eq=system.b_eq if system.n_equalities else None,
            A_ub=system.A_ub if system.n_inequalities else None,
            b_ub=system.b_ub if system.n_inequalities else None,
            bounds=bounds,
            method=meth,
            options=options,
        )

    res = _solve(method)
    method_used = method
    if not res.success:
        tele = obs.get_telemetry()
        alternate = "highs" if method == "highs-ipm" else "highs-ipm"
        for meth, options in ((alternate, None), ("highs", {"presolve": False})):
            tele.counter("lp.retry_step")
            res = _solve(meth, options)
            method_used = meth
            if res.success:
                break
    return res, method_used


def optimize_metric(
    system: ConstraintSystem,
    metric: LinearMetric,
    sense: str,
    method: str = "auto",
    backend: str = "auto",
) -> LPSolution:
    """Optimize ``metric`` over the constraint polytope.

    Parameters
    ----------
    system:
        Assembled exact-constraint system.
    metric:
        Linear objective.
    sense:
        ``"min"`` or ``"max"``.
    method:
        HiGHS algorithm.  ``"auto"`` follows
        :func:`~repro.core.lpbackend.choose_lp_method`: dual simplex for
        small systems, interior point past ``_IPM_THRESHOLD`` variables
        (mirroring the paper's interior-point choice for its large
        instances).
    backend:
        ``"auto"`` (persistent HiGHS when a binding is importable, scipy
        otherwise), ``"highs"``, or ``"scipy"``.  Batched callers should
        use :class:`repro.runtime.batch.BatchLPSolver`, which keeps the
        persistent model alive across solves; this one-shot API builds
        and discards it.

    Raises
    ------
    SolverError
        If the LP is infeasible/unbounded — with exact constraints this
        indicates a modeling bug, never a property of the network, so it is
        surfaced loudly rather than returned as NaN.
    """
    if sense not in ("min", "max"):
        raise ValueError(f"sense must be 'min' or 'max', got {sense!r}")
    # Exotic linprog methods (anything beyond auto/highs/highs-ipm) only
    # exist on the scipy path; route them there regardless of backend.
    if (
        method in ("auto", "highs", "highs-ipm")
        and resolve_backend(backend) == "highs"
    ):
        info = PersistentLP(system, method=method).solve(
            metric.dense(system.n_variables), sense
        )
        return LPSolution(
            value=float(info.value + metric.constant),
            x=info.x,
            sense=sense,
            status=0,
            n_iterations=info.n_iterations,
            method_used=info.method_used,
        )
    if method == "auto":
        method = choose_lp_method(system.n_variables)
    c = metric.dense(system.n_variables)
    sign = 1.0 if sense == "min" else -1.0
    if sense == "max":
        np.negative(c, out=c)  # flip in place: one dense vector per solve

    res, method_used = solve_lp_core(c, system, method)
    if not res.success:
        raise SolverError(
            f"LP {sense} of {metric.name} failed: {res.message} (status {res.status})"
        )
    value = sign * res.fun + metric.constant
    return LPSolution(
        value=float(value),
        x=res.x,
        sense=sense,
        status=int(res.status),
        n_iterations=int(getattr(res, "nit", -1)),
        method_used=method_used,
    )

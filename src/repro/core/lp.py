"""LP backend: min/max of a linear metric over the marginal polytope.

The paper reports interior-point solve times (10 MAP(2) queues, N = 50,
about four minutes in 2008); we use scipy's HiGHS which solves the same
programs in well under a second for the paper-scale models — the
``benchmarks/test_bench_lp_scaling.py`` harness reproduces the scalability
claim of Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro import obs
from repro.core.constraints import ConstraintSystem
from repro.core.objectives import LinearMetric
from repro.utils.errors import SolverError

__all__ = ["LPSolution", "optimize_metric", "solve_lp_core"]


@dataclass(frozen=True)
class LPSolution:
    """Optimal value (and argument) of one LP solve."""

    value: float
    x: np.ndarray
    sense: str  # "min" | "max"
    status: int
    n_iterations: int


#: Above this variable count, interior point beats HiGHS's dual simplex on
#: these highly degenerate balance polytopes by an order of magnitude.
_IPM_THRESHOLD = 20_000


def solve_lp_core(
    c: np.ndarray,
    system: ConstraintSystem,
    method: str,
    bounds: np.ndarray | None = None,
):
    """One robust ``linprog`` call: min of ``c @ x`` over ``system``.

    HiGHS occasionally reports spurious infeasibility on the ill-conditioned
    instances this polytope produces (high-SCV MAP(2) moments put 4+ orders
    of magnitude between coefficients).  The exact constraints are feasible
    by construction, so on failure we walk a retry ladder — the alternate
    HiGHS algorithm, then simplex with presolve disabled — before giving up.

    ``bounds`` is the ``(n, 2)`` stacked variable-bound array; passing it in
    lets batched callers build it once per system instead of per solve.

    Returns ``(res, method_used)``: the scipy ``OptimizeResult`` untouched,
    plus the name of the HiGHS algorithm that actually produced it (the
    requested ``method``, or the retry-ladder step that succeeded).
    """
    if bounds is None:
        bounds = np.column_stack([system.lb, system.ub])

    def _solve(meth: str, options=None):
        return linprog(
            c,
            A_eq=system.A_eq if system.n_equalities else None,
            b_eq=system.b_eq if system.n_equalities else None,
            A_ub=system.A_ub if system.n_inequalities else None,
            b_ub=system.b_ub if system.n_inequalities else None,
            bounds=bounds,
            method=meth,
            options=options,
        )

    res = _solve(method)
    method_used = method
    if not res.success:
        tele = obs.get_telemetry()
        alternate = "highs" if method == "highs-ipm" else "highs-ipm"
        for meth, options in ((alternate, None), ("highs", {"presolve": False})):
            tele.counter("lp.retry_step")
            res = _solve(meth, options)
            method_used = meth
            if res.success:
                break
    return res, method_used


def optimize_metric(
    system: ConstraintSystem,
    metric: LinearMetric,
    sense: str,
    method: str = "auto",
) -> LPSolution:
    """Optimize ``metric`` over the constraint polytope.

    Parameters
    ----------
    system:
        Assembled exact-constraint system.
    metric:
        Linear objective.
    sense:
        ``"min"`` or ``"max"``.
    method:
        ``scipy.optimize.linprog`` method.  ``"auto"`` picks HiGHS simplex
        for small systems and HiGHS interior point beyond
        ``_IPM_THRESHOLD`` variables (mirroring the paper's interior-point
        choice for its large instances).

    Raises
    ------
    SolverError
        If the LP is infeasible/unbounded — with exact constraints this
        indicates a modeling bug, never a property of the network, so it is
        surfaced loudly rather than returned as NaN.
    """
    if sense not in ("min", "max"):
        raise ValueError(f"sense must be 'min' or 'max', got {sense!r}")
    if method == "auto":
        method = "highs" if system.n_variables <= _IPM_THRESHOLD else "highs-ipm"
    c = metric.dense(system.n_variables)
    sign = 1.0 if sense == "min" else -1.0
    if sense == "max":
        np.negative(c, out=c)  # flip in place: one dense vector per solve

    res, _ = solve_lp_core(c, system, method)
    if not res.success:
        raise SolverError(
            f"LP {sense} of {metric.name} failed: {res.message} (status {res.status})"
        )
    value = sign * res.fun + metric.constant
    return LPSolution(
        value=float(value),
        x=res.x,
        sense=sense,
        status=int(res.status),
        n_iterations=int(getattr(res, "nit", -1)),
    )

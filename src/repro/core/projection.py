"""Projection of exact CTMC solutions onto the LP variable space.

This is the *exactness oracle* of the reproduction: the marginal-balance
constraint families are only correct if the projection of the true
stationary distribution satisfies every one of them.  The test suite runs
:func:`verify_exactness` over randomized networks; a nonzero residual would
pinpoint (via row labels) which derived balance equation is wrong.
"""

from __future__ import annotations

import numpy as np

from repro.core.constraints import ConstraintSystem, build_constraints
from repro.core.variables import VariableIndex
from repro.network.exact import ExactSolution

__all__ = ["project_exact_solution", "verify_exactness"]


def project_exact_solution(sol: ExactSolution, vi: VariableIndex | None = None) -> np.ndarray:
    """Marginal-variable vector of the exact stationary distribution."""
    network = sol.network
    vi = vi or VariableIndex(network)
    x = np.zeros(vi.size)
    M = network.n_stations
    for k in range(M):
        off, shape = vi.block("pi", k)
        x[off : off + int(np.prod(shape))] = sol.marginal(k).ravel()
    for j in range(M):
        for k in range(M):
            if j == k:
                continue
            off, shape = vi.block("V", j, k)
            x[off : off + int(np.prod(shape))] = sol.pair_marginal(j, k, busy=True).ravel()
            off, shape = vi.block("W", j, k)
            x[off : off + int(np.prod(shape))] = sol.pair_marginal(j, k, busy=False).ravel()
            off, shape = vi.block("G", j, k)
            x[off : off + int(np.prod(shape))] = sol.conditional_first_moment(j, k).ravel()
    if vi.triples:
        for i in range(M):
            for j in range(M):
                for k in range(M):
                    if len({i, j, k}) != 3:
                        continue
                    S, T = sol.triple_marginal(i, j, k)
                    off, shape = vi.block("S", i, j, k)
                    x[off : off + int(np.prod(shape))] = S.ravel()
                    off, shape = vi.block("T", i, j, k)
                    x[off : off + int(np.prod(shape))] = T.ravel()
    return x


def verify_exactness(
    sol: ExactSolution,
    system: ConstraintSystem | None = None,
    include_redundant: bool = True,
) -> dict:
    """Check every constraint family against the projected exact solution.

    Returns a report dict with the worst equality residual, the worst
    inequality violation, and the label of the worst-offending row.
    """
    system = system or build_constraints(
        sol.network, include_redundant=include_redundant
    )
    x = project_exact_solution(sol, system.vi)
    eq_res, ub_res = system.residuals(x)
    report = {
        "max_equality_residual": float(np.abs(eq_res).max()) if eq_res.size else 0.0,
        "max_inequality_violation": float(ub_res.max()) if ub_res.size else 0.0,
        "worst_equality_label": (
            system.eq_labels[int(np.abs(eq_res).argmax())] if eq_res.size else None
        ),
    }
    return report

"""Exact constraint families of the marginal-balance LP.

Every equality/inequality emitted here is *exact*: it is satisfied by the
projection of the true stationary distribution of the network CTMC onto the
marginal variable space (machine-checked by ``tests/core/test_projection``).
The bound property of the method rests entirely on this exactness — the LP
optimizes over a polytope guaranteed to contain the truth, as in the paper's
Section 2.

Families (letters match DESIGN.md §2):

A. level-phase balance of the set ``{n_k = n, h_k = h}`` — the aggregated
   global-balance equations across the paper's *marginal cuts*, with
   arrival flows expressed through ``V`` (constant-rate sources) or ``G``
   (delay sources);
B. phase-aggregated cut balance (paper eq. (1)); implied by A, optional;
C. V/W <-> pi consistency;
D. pair symmetry between ``V_jk`` / ``V_kj`` / ``W_kj``;
E. normalization (structural zeros are handled as variable bounds);
F. throughput flow balance (implied by A+C, optional);
G. population couplings through the conditional first moments ``G_jk``,
   plus the G/V sandwich inequalities;
H. conditional first-moment *drift balances*: ``d/dt E[n_j 1{h_j=a, n_k=n,
   h_k=h}] = 0`` expanded over the network generator.  Third-party flows
   (stations i outside the pair) enter through the triple-joint variables
   ``S``/``T``; the family is emitted for each pair whose third-party
   sources are constant-rate (queue-kind) stations;
SC/TC. consistency of the triple variables with the pair marginals
   (phase marginalization, Frechet-type sandwiches, population and
   moment-marginalization identities).

Load-dependent *multiserver* stations are rejected: their departure rate
conditioned on another station's state needs ``E[min(n_j, s); ...]``, which
is not a variable of this LP (delay stations are fine — their rate is
linear in ``n_j``, which is exactly ``G``).

Assembly is performed by the vectorized block kernel in
:mod:`repro.core.assembly` (family-level COO emission over ``(a, n, h)``
index grids, with per-topology pattern caching); the original row-by-row
emitter survives as :func:`build_constraints_reference` and the two are
asserted polytope-identical by ``tests/core/test_assembly_equivalence``.
"""

from __future__ import annotations

from repro.core.assembly import (
    AssemblyCache,
    AssemblyPlan,
    ConstraintSystem,
    _resolve_triples,
    assemble,
)
from repro.core.assembly_reference import build_constraints_reference
from repro.core.variables import VariableIndex
from repro.network.model import Network, require_closed

__all__ = [
    "ConstraintSystem",
    "build_constraints",
    "build_constraints_reference",
]


def build_constraints(
    network: Network,
    vi: VariableIndex | None = None,
    include_redundant: bool = False,
    triples: bool | None = None,
    plan: AssemblyPlan | None = None,
    cache: AssemblyCache | None = None,
) -> ConstraintSystem:
    """Assemble all exact constraint families for ``network``.

    Parameters
    ----------
    network:
        The closed MAP network (queue/delay stations only).
    vi:
        Optional pre-built variable index.
    include_redundant:
        Also emit families B and F, which are linear combinations of A + C.
        They do not change the polytope; exposed for ablation experiments.
    triples:
        Enable the triple-variable tier (families H/SC/TC).  ``None`` means
        automatic (on for M >= 3); ``False`` gives the cheaper pair-only
        relaxation used by the constraint-ablation benchmark.
    plan:
        Optional pre-built :class:`~repro.core.assembly.AssemblyPlan` for
        this network's topology (population sweeps reuse one plan across
        every point).  When given, ``include_redundant``/``triples`` must
        match the plan (checked); ``cache`` is ignored.
    cache:
        The :class:`~repro.core.assembly.AssemblyCache` to look the plan up
        in; ``None`` uses the process-wide default cache.
    """
    require_closed(network, "lp")
    if vi is not None and triples is None:
        # A pre-built index fixes the constraint tier (seed semantics:
        # the families consult vi.triples, not the keyword).
        triples = vi.triples
    if plan is not None:
        if triples is not None and _resolve_triples(network, triples) != plan.triples:
            raise ValueError(
                f"triples={triples!r} conflicts with the plan's tier "
                f"(plan.triples={plan.triples})"
            )
        if include_redundant != plan.include_redundant:
            raise ValueError(
                f"include_redundant={include_redundant!r} conflicts with the "
                f"plan (plan.include_redundant={plan.include_redundant})"
            )
        return plan.assemble(network, vi=vi)
    return assemble(
        network,
        vi=vi,
        include_redundant=include_redundant,
        triples=triples,
        cache=cache,
    )

"""Reference (seed) row-by-row constraint assembly.

This is the original per-row emitter kept verbatim as the correctness
oracle for the vectorized block assembler in :mod:`repro.core.assembly`:
``tests/core/test_assembly_equivalence.py`` asserts that both paths produce
the identical polytope (canonicalized CSR matrices bit-equal, identical
labels/rhs/bounds) on every catalog scenario.  It is quadruple-nested
Python loops calling :meth:`_RowBuilder.add_row` once per row — clear,
slow, and deliberately untouched.

See :mod:`repro.core.constraints` for the family documentation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.assembly import ConstraintSystem
from repro.core.variables import VariableIndex
from repro.network.model import Network
from repro.utils.errors import NotSupportedError

__all__ = ["build_constraints_reference"]


class _RowBuilder:
    """Accumulates sparse rows of a constraint matrix."""

    def __init__(self) -> None:
        self.rows: list[np.ndarray] = []
        self.cols: list[np.ndarray] = []
        self.vals: list[np.ndarray] = []
        self.rhs: list[float] = []
        self.labels: list[str] = []
        self.n_rows = 0

    def add_row(self, cols, vals, rhs: float, label: str) -> None:
        cols = np.atleast_1d(np.asarray(cols, dtype=np.int64))
        vals = np.atleast_1d(np.asarray(vals, dtype=float))
        keep = vals != 0.0
        cols, vals = cols[keep], vals[keep]
        self.rows.append(np.full(len(cols), self.n_rows, dtype=np.int64))
        self.cols.append(cols)
        self.vals.append(vals)
        self.rhs.append(rhs)
        self.labels.append(label)
        self.n_rows += 1

    def matrix(self, n_vars: int) -> tuple[sp.csr_matrix, np.ndarray]:
        if self.n_rows == 0:
            return sp.csr_matrix((0, n_vars)), np.empty(0)
        A = sp.coo_matrix(
            (
                np.concatenate(self.vals),
                (np.concatenate(self.rows), np.concatenate(self.cols)),
            ),
            shape=(self.n_rows, n_vars),
        ).tocsr()
        A.sum_duplicates()
        return A, np.asarray(self.rhs)


def _source_arrival_terms(
    network: Network, vi: VariableIndex, j: int, k: int, n: int, h: int
) -> tuple[np.ndarray, np.ndarray]:
    """(cols, vals) of the arrival-rate expression from station j into k,
    conditioned on ``{n_k = n, h_k = h}``, *excluding* the routing factor.

    Queue source:  sum_a e_j(a) * V_jk(a, n, h)   (unit rate while busy)
    Delay source:  mu_j * G_jk(0, n, h)           (rate n_j * mu_j)
    """
    st = network.stations[j]
    if st.kind == "queue":
        e_j = st.service.D1.sum(axis=1)  # event rate per phase
        a = np.arange(st.phases)
        return vi.V(j, k, a, n, h), e_j
    if st.kind == "delay":
        mu = float(st.service.D1[0, 0])
        return np.atleast_1d(vi.G(j, k, 0, n, h)), np.array([mu])
    raise NotSupportedError(
        f"station {st.name!r}: multiserver stations are not supported by the "
        "marginal-balance LP (their conditional departure rate is not a "
        "variable of the program); use solve_exact or the simulator"
    )


def build_constraints_reference(
    network: Network,
    vi: VariableIndex | None = None,
    include_redundant: bool = False,
    triples: bool | None = None,
) -> ConstraintSystem:
    """Assemble all exact constraint families for ``network`` (row by row).

    Same contract as :func:`repro.core.constraints.build_constraints`; kept
    as the equivalence oracle and for micro-benchmarks of the vectorized
    path.
    """
    vi = vi or VariableIndex(network, triples=triples)
    M = network.n_stations
    N = network.population
    for st in network.stations:
        if st.kind == "multiserver":
            raise NotSupportedError(
                f"station {st.name!r}: multiserver stations are not supported "
                "by the marginal-balance LP"
            )

    eq = _RowBuilder()
    ub = _RowBuilder()
    routing = network.routing

    # ------------------------------------------------------------------ #
    # Family A: level-phase balance of {n_k = n, h_k = h}
    # ------------------------------------------------------------------ #
    for k in range(M):
        st_k = network.stations[k]
        Kk = st_k.phases
        D0k, D1k = st_k.service.D0, st_k.service.D1
        e_k = D1k.sum(axis=1)
        d0_out = D0k.sum(axis=1) - np.diag(D0k)  # off-diagonal row sums
        qkk = routing[k, k]
        sources = [j for j in range(M) if j != k and routing[j, k] > 0.0]
        levels = np.arange(N + 1)
        c_k = st_k.rate_scale(levels)  # c_k(0) = 0 handles the idle boundary
        for n in range(N + 1):
            for h in range(Kk):
                cols: list[np.ndarray] = []
                vals: list[np.ndarray] = []

                # OUT: station k's own transitions leaving the set.
                own_out = c_k[n] * (
                    d0_out[h] + qkk * (e_k[h] - D1k[h, h]) + (1.0 - qkk) * e_k[h]
                )
                if own_out != 0.0:
                    cols.append(np.atleast_1d(vi.pi(k, n, h)))
                    vals.append(np.array([own_out]))

                # OUT: arrivals from j != k push n -> n+1 (leave the set).
                if n < N:
                    for j in sources:
                        c_j, v_j = _source_arrival_terms(network, vi, j, k, n, h)
                        cols.append(c_j)
                        vals.append(routing[j, k] * v_j)

                # IN: same-level phase changes g -> h (hidden or self-routed).
                for g in range(Kk):
                    if g == h:
                        continue
                    rate_in = c_k[n] * (D0k[g, h] + qkk * D1k[g, h])
                    if rate_in != 0.0:
                        cols.append(np.atleast_1d(vi.pi(k, n, g)))
                        vals.append(np.array([-rate_in]))

                # IN: from level n-1 via an arrival (k's phase h unchanged).
                if n >= 1:
                    for j in sources:
                        c_j, v_j = _source_arrival_terms(network, vi, j, k, n - 1, h)
                        cols.append(c_j)
                        vals.append(-routing[j, k] * v_j)

                # IN: from level n+1 via a completion routed away, g -> h.
                if n + 1 <= N:
                    g = np.arange(Kk)
                    rate_in = c_k[n + 1] * (1.0 - qkk) * D1k[:, h]
                    cols.append(vi.pi(k, n + 1, g))
                    vals.append(-rate_in)

                if not cols:
                    continue
                all_cols = np.concatenate(cols)
                all_vals = np.concatenate(vals)
                # Sign convention: OUT terms positive, IN terms negative.
                eq.add_row(all_cols, all_vals, 0.0, f"A[k={k},n={n},h={h}]")

    # ------------------------------------------------------------------ #
    # Family C: V/W <-> pi consistency
    # ------------------------------------------------------------------ #
    for j in range(M):
        Kj = network.stations[j].phases
        for k in range(M):
            if j == k:
                continue
            Kk = network.stations[k].phases
            # C1: sum_a (V + W)_jk(a, n, h) = pi_k(n, h)
            a = np.arange(Kj)
            for n in range(N + 1):
                for h in range(Kk):
                    cols = np.concatenate(
                        [
                            vi.V(j, k, a, n, h),
                            vi.W(j, k, a, n, h),
                            np.atleast_1d(vi.pi(k, n, h)),
                        ]
                    )
                    vals = np.concatenate([np.ones(Kj), np.ones(Kj), [-1.0]])
                    eq.add_row(cols, vals, 0.0, f"C1[j={j},k={k},n={n},h={h}]")
            # C2: sum_{n,h} V_jk(a, n, h) = sum_{n>=1} pi_j(n, a)
            # C3: sum_{n,h} W_jk(a, n, h) = pi_j(0, a)
            nn, hh = np.meshgrid(np.arange(N + 1), np.arange(Kk), indexing="ij")
            for a_val in range(Kj):
                v_cols = vi.V(j, k, a_val, nn.ravel(), hh.ravel())
                pj_cols = vi.pi(j, np.arange(1, N + 1), a_val) if N >= 1 else []
                cols = np.concatenate([v_cols, np.atleast_1d(pj_cols)])
                vals = np.concatenate([np.ones(v_cols.size), -np.ones(N)])
                eq.add_row(cols, vals, 0.0, f"C2[j={j},k={k},a={a_val}]")

                w_cols = vi.W(j, k, a_val, nn.ravel(), hh.ravel())
                cols = np.concatenate([w_cols, [vi.pi(j, 0, a_val)]])
                vals = np.concatenate([np.ones(w_cols.size), [-1.0]])
                eq.add_row(cols, vals, 0.0, f"C3[j={j},k={k},a={a_val}]")

    # ------------------------------------------------------------------ #
    # Family D: pair symmetry (each unordered pair once)
    # ------------------------------------------------------------------ #
    for j in range(M):
        for k in range(j + 1, M):
            Kj = network.stations[j].phases
            Kk = network.stations[k].phases
            n_pos = np.arange(1, N + 1)
            for a in range(Kj):
                for h in range(Kk):
                    # D1: P[both busy, h_j=a, h_k=h] two ways.
                    cols = np.concatenate(
                        [vi.V(j, k, a, n_pos, h), vi.V(k, j, h, n_pos, a)]
                    )
                    vals = np.concatenate([np.ones(N), -np.ones(N)])
                    eq.add_row(cols, vals, 0.0, f"D1[j={j},k={k},a={a},h={h}]")
                    # D2: V_jk(a, 0, h) = sum_{m>=1} W_kj(h, m, a)
                    cols = np.concatenate(
                        [[vi.V(j, k, a, 0, h)], vi.W(k, j, h, n_pos, a)]
                    )
                    vals = np.concatenate([[1.0], -np.ones(N)])
                    eq.add_row(cols, vals, 0.0, f"D2[j={j},k={k},a={a},h={h}]")
                    # D3: W_jk(a, 0, h) = W_kj(h, 0, a)  (both idle, symmetric)
                    eq.add_row(
                        [vi.W(j, k, a, 0, h), vi.W(k, j, h, 0, a)],
                        [1.0, -1.0],
                        0.0,
                        f"D3[j={j},k={k},a={a},h={h}]",
                    )

    # ------------------------------------------------------------------ #
    # Family E: normalization
    # ------------------------------------------------------------------ #
    for k in range(M):
        Kk = network.stations[k].phases
        nn, hh = np.meshgrid(np.arange(N + 1), np.arange(Kk), indexing="ij")
        eq.add_row(
            vi.pi(k, nn.ravel(), hh.ravel()),
            np.ones(nn.size),
            1.0,
            f"E1[k={k}]",
        )

    # ------------------------------------------------------------------ #
    # Family G: population couplings + G/V sandwich
    # ------------------------------------------------------------------ #
    # G1: sum_{j != k} sum_a G_jk(a, n, h) = (N - n) pi_k(n, h)
    for k in range(M):
        Kk = network.stations[k].phases
        others = [j for j in range(M) if j != k]
        if not others:
            continue
        for n in range(N + 1):
            for h in range(Kk):
                g_cols = [
                    vi.G(j, k, np.arange(network.stations[j].phases), n, h)
                    for j in others
                ]
                cols = np.concatenate(g_cols + [np.atleast_1d(vi.pi(k, n, h))])
                vals = np.concatenate(
                    [np.ones(sum(len(c) for c in g_cols)), [-(N - n)]]
                )
                eq.add_row(cols, vals, 0.0, f"G1[k={k},n={n},h={h}]")

    # G2/G3: population conditioned on source-station busy/idle state.
    for j in range(M):
        Kj = network.stations[j].phases
        others = [k for k in range(M) if k != j]
        if not others:
            continue
        n_pos = np.arange(1, N + 1)
        for a in range(Kj):
            cols = [vi.pi(j, n_pos, a)]
            vals = [n_pos.astype(float) - float(N)]  # n pi_j(n,a) - N pi_j(n,a)
            for k in others:
                Kk = network.stations[k].phases
                nn, hh = np.meshgrid(np.arange(N + 1), np.arange(Kk), indexing="ij")
                cols.append(vi.V(j, k, a, nn.ravel(), hh.ravel()))
                vals.append(np.broadcast_to(nn.ravel(), nn.size).astype(float))
            eq.add_row(
                np.concatenate(cols),
                np.concatenate(vals),
                0.0,
                f"G2[j={j},a={a}]",
            )
            # G3: sum_k sum_{n,h} n W_jk(a,n,h) = N pi_j(0,a)
            cols = [np.atleast_1d(vi.pi(j, 0, a))]
            vals = [np.array([-float(N)])]
            for k in others:
                Kk = network.stations[k].phases
                nn, hh = np.meshgrid(np.arange(N + 1), np.arange(Kk), indexing="ij")
                cols.append(vi.W(j, k, a, nn.ravel(), hh.ravel()))
                vals.append(np.broadcast_to(nn.ravel(), nn.size).astype(float))
            eq.add_row(
                np.concatenate(cols),
                np.concatenate(vals),
                0.0,
                f"G3[j={j},a={a}]",
            )

    # Sandwich (per source phase): V_jk(a,n,h) <= G_jk(a,n,h) <= (N-n) V_jk(a,n,h)
    # (n_j * 1{n_j>=1} is n_j, and 1{n_j>=1} <= n_j <= (N-n) 1{n_j>=1} given n_k=n.)
    for j in range(M):
        Kj = network.stations[j].phases
        for k in range(M):
            if j == k:
                continue
            Kk = network.stations[k].phases
            for n in range(N + 1):
                for h in range(Kk):
                    for a in range(Kj):
                        v_col = int(vi.V(j, k, a, n, h))
                        g_col = int(vi.G(j, k, a, n, h))
                        # V - G <= 0
                        ub.add_row(
                            [v_col, g_col],
                            [1.0, -1.0],
                            0.0,
                            f"S1[j={j},k={k},a={a},n={n},h={h}]",
                        )
                        # G - (N - n) V <= 0
                        ub.add_row(
                            [g_col, v_col],
                            [1.0, -float(N - n)],
                            0.0,
                            f"S2[j={j},k={k},a={a},n={n},h={h}]",
                        )

    # G4: moment consistency — sum_{n,h} G_jk(a, n, h) = E[n_j 1{h_j=a}]
    #     = sum_m m * pi_j(m, a), for every ordered pair and source phase.
    for j in range(M):
        Kj = network.stations[j].phases
        n_pos = np.arange(1, N + 1)
        for k in range(M):
            if j == k:
                continue
            Kk = network.stations[k].phases
            nn, hh = np.meshgrid(np.arange(N + 1), np.arange(Kk), indexing="ij")
            for a in range(Kj):
                g_cols = vi.G(j, k, a, nn.ravel(), hh.ravel())
                cols = np.concatenate([g_cols, vi.pi(j, n_pos, a)])
                vals = np.concatenate(
                    [np.ones(g_cols.size), -n_pos.astype(float)]
                )
                eq.add_row(cols, vals, 0.0, f"G4[j={j},k={k},a={a}]")

    # ------------------------------------------------------------------ #
    # Families SC/TC: triple-variable consistency (when triples enabled)
    # ------------------------------------------------------------------ #
    if vi.triples:
        K = network.phase_orders
        for i in range(M):
            for j in range(M):
                for k in range(M):
                    if len({i, j, k}) != 3:
                        continue
                    Ki, Kj, Kk = K[i], K[j], K[k]
                    # SC1: sum_a S_ijk(e,a,n,h) = V_ik(e,n,h)
                    a_all = np.arange(Kj)
                    for e in range(Ki):
                        for n in range(N + 1):
                            for h in range(Kk):
                                cols = np.concatenate(
                                    [
                                        vi.S(i, j, k, e, a_all, n, h),
                                        [vi.V(i, k, e, n, h)],
                                    ]
                                )
                                vals = np.concatenate([np.ones(Kj), [-1.0]])
                                eq.add_row(
                                    cols, vals, 0.0,
                                    f"SC1[i={i},j={j},k={k},e={e},n={n},h={h}]",
                                )
                    e_all = np.arange(Ki)
                    for a in range(Kj):
                        for n in range(N + 1):
                            for h in range(Kk):
                                s_cols = vi.S(i, j, k, e_all, a, n, h)
                                vw_cols = np.array(
                                    [vi.V(j, k, a, n, h), vi.W(j, k, a, n, h)]
                                )
                                # SC2: sum_e S <= (V+W)_jk(a,n,h)
                                ub.add_row(
                                    np.concatenate([s_cols, vw_cols]),
                                    np.concatenate([np.ones(Ki), [-1.0, -1.0]]),
                                    0.0,
                                    f"SC2[i={i},j={j},k={k},a={a},n={n},h={h}]",
                                )
                                # SC3: (V+W)_jk - sum_e S <= sum_e W_ik(e,n,h)
                                w_ik = vi.W(i, k, e_all, n, h)
                                ub.add_row(
                                    np.concatenate([vw_cols, s_cols, w_ik]),
                                    np.concatenate(
                                        [[1.0, 1.0], -np.ones(Ki), -np.ones(Ki)]
                                    ),
                                    0.0,
                                    f"SC3[i={i},j={j},k={k},a={a},n={n},h={h}]",
                                )
                                t_cols = vi.T(i, j, k, e_all, a, n, h)
                                # TC4: sum_e T <= G_jk(a,n,h)
                                ub.add_row(
                                    np.concatenate([t_cols, [vi.G(j, k, a, n, h)]]),
                                    np.concatenate([np.ones(Ki), [-1.0]]),
                                    0.0,
                                    f"TC4[i={i},j={j},k={k},a={a},n={n},h={h}]",
                                )
                                # TC5: G_jk - sum_e T <= (N-n) sum_e W_ik
                                ub.add_row(
                                    np.concatenate(
                                        [[vi.G(j, k, a, n, h)], t_cols, w_ik]
                                    ),
                                    np.concatenate(
                                        [[1.0], -np.ones(Ki), -float(N - n) * np.ones(Ki)]
                                    ),
                                    0.0,
                                    f"TC5[i={i},j={j},k={k},a={a},n={n},h={h}]",
                                )
                                # TC1: T <= (N-n-1) S pointwise
                                cap = max(N - n - 1, 0)
                                for e in range(Ki):
                                    ub.add_row(
                                        [
                                            int(vi.T(i, j, k, e, a, n, h)),
                                            int(vi.S(i, j, k, e, a, n, h)),
                                        ],
                                        [1.0, -float(cap)],
                                        0.0,
                                        f"TC1[i={i},j={j},k={k},e={e},a={a},n={n},h={h}]",
                                    )
                    # SC4 / TC3: marginalize k away.
                    nn, hh = np.meshgrid(
                        np.arange(N + 1), np.arange(Kk), indexing="ij"
                    )
                    for e in range(Ki):
                        for a in range(Kj):
                            s_cols = vi.S(i, j, k, e, a, nn.ravel(), hh.ravel())
                            v_ij = vi.V(i, j, e, np.arange(N + 1), a)
                            eq.add_row(
                                np.concatenate([s_cols, v_ij]),
                                np.concatenate(
                                    [np.ones(s_cols.size), -np.ones(N + 1)]
                                ),
                                0.0,
                                f"SC4[i={i},j={j},k={k},e={e},a={a}]",
                            )
                            t_cols = vi.T(i, j, k, e, a, nn.ravel(), hh.ravel())
                            eq.add_row(
                                np.concatenate([t_cols, v_ij]),
                                np.concatenate(
                                    [
                                        np.ones(t_cols.size),
                                        -np.arange(N + 1, dtype=float),
                                    ]
                                ),
                                0.0,
                                f"TC3[i={i},j={j},k={k},e={e},a={a}]",
                            )
        # TC2: population identity conditioned on (i busy, k state):
        #   sum_{j not in {i,k}} sum_a T_ijk(e,a,n,h)
        #     = (N - n) V_ik(e,n,h) - G_ik(e,n,h)
        for i in range(M):
            Ki = network.phase_orders[i]
            for k in range(M):
                if i == k:
                    continue
                Kk = network.phase_orders[k]
                js = [j for j in range(M) if j not in (i, k)]
                for e in range(Ki):
                    for n in range(N + 1):
                        for h in range(Kk):
                            t_cols = np.concatenate(
                                [
                                    vi.T(
                                        i, j, k, e,
                                        np.arange(network.phase_orders[j]), n, h,
                                    )
                                    for j in js
                                ]
                            )
                            cols = np.concatenate(
                                [
                                    t_cols,
                                    [vi.V(i, k, e, n, h), vi.G(i, k, e, n, h)],
                                ]
                            )
                            vals = np.concatenate(
                                [np.ones(t_cols.size), [-(N - n), 1.0]]
                            )
                            eq.add_row(
                                cols, vals, 0.0,
                                f"TC2[i={i},k={k},e={e},n={n},h={h}]",
                            )

    # ------------------------------------------------------------------ #
    # Family H: conditional first-moment drift balances
    # ------------------------------------------------------------------ #
    # Emitted per ordered pair (j, k) when expressible: j is queue-kind
    # and every third-party source into j or k is queue-kind.
    for j in range(M):
        st_j = network.stations[j]
        if st_j.kind != "queue":
            continue
        Kj = st_j.phases
        D0j, D1j = st_j.service.D0, st_j.service.D1
        e_j = D1j.sum(axis=1)
        d0out_j = D0j.sum(axis=1) - np.diag(D0j)
        for k in range(M):
            if j == k:
                continue
            third = [i for i in range(M) if i not in (j, k)]
            feeders = [
                i for i in third if routing[i, j] > 0.0 or routing[i, k] > 0.0
            ]
            if any(network.stations[i].kind != "queue" for i in feeders):
                continue  # third-party delay source: moment terms inexpressible
            if feeders and not vi.triples:
                continue  # needs S/T variables
            st_k = network.stations[k]
            Kk = st_k.phases
            D0k, D1k = st_k.service.D0, st_k.service.D1
            e_k = D1k.sum(axis=1)
            d0out_k = D0k.sum(axis=1) - np.diag(D0k)
            qkk = routing[k, k]
            p_jj = routing[j, j]
            p_jk = routing[j, k]
            p_kj = routing[k, j]
            p_other = 1.0 - p_jj - p_jk
            c_k = st_k.rate_scale(np.arange(N + 1))
            alpha_all = np.arange(Kj)
            for a in range(Kj):
                for n in range(N + 1):
                    for h in range(Kk):
                        cols: list[np.ndarray] = []
                        vals: list[np.ndarray] = []

                        def add(c, v):
                            cols.append(np.atleast_1d(np.asarray(c, dtype=np.int64)))
                            vals.append(np.atleast_1d(np.asarray(v, dtype=float)))

                        # (1) j completes: loss at rate e_j(a).
                        add(vi.G(j, k, a, n, h), -e_j[a])
                        # gains: self-route keeps n_j; others drop n_j by 1.
                        d1_in = D1j[:, a]  # alpha -> a completion rates
                        if p_jj > 0.0:
                            add(vi.G(j, k, alpha_all, n, h), p_jj * d1_in)
                        if p_other > 0.0:
                            add(vi.G(j, k, alpha_all, n, h), p_other * d1_in)
                            add(vi.V(j, k, alpha_all, n, h), -p_other * d1_in)
                        if p_jk > 0.0 and n >= 1:
                            add(vi.G(j, k, alpha_all, n - 1, h), p_jk * d1_in)
                            add(vi.V(j, k, alpha_all, n - 1, h), -p_jk * d1_in)

                        # (2) j hidden phase transitions.
                        for alpha in range(Kj):
                            if alpha != a and D0j[alpha, a] != 0.0:
                                add(vi.G(j, k, alpha, n, h), D0j[alpha, a])
                        if d0out_j[a] != 0.0:
                            add(vi.G(j, k, a, n, h), -d0out_j[a])

                        # (3) k transitions at level n (rate scale c_k).
                        if c_k[n] != 0.0:
                            own = (
                                (1.0 - qkk) * e_k[h]
                                + qkk * (e_k[h] - D1k[h, h])
                                + d0out_k[h]
                            )
                            add(vi.G(j, k, a, n, h), -c_k[n] * own)
                            for g in range(Kk):
                                if g == h:
                                    continue
                                rate_in = qkk * D1k[g, h] + D0k[g, h]
                                if rate_in != 0.0:
                                    add(vi.G(j, k, a, n, g), c_k[n] * rate_in)
                        if n + 1 <= N and c_k[n + 1] != 0.0:
                            g_all = np.arange(Kk)
                            coeff = c_k[n + 1] * D1k[:, h]
                            add(vi.G(j, k, a, n + 1, g_all), (1.0 - qkk) * coeff)
                            if p_kj > 0.0:
                                add(vi.V(j, k, a, n + 1, g_all), p_kj * coeff)
                                add(vi.W(j, k, a, n + 1, g_all), p_kj * coeff)

                        # (4) third-party arrivals into k (T terms).
                        for i in third:
                            p_ik = routing[i, k]
                            if p_ik <= 0.0:
                                continue
                            e_i = network.stations[i].service.D1.sum(axis=1)
                            eps = np.arange(network.phase_orders[i])
                            if n >= 1:
                                add(vi.T(i, j, k, eps, a, n - 1, h), p_ik * e_i)
                            add(vi.T(i, j, k, eps, a, n, h), -p_ik * e_i)

                        # (5) third-party arrivals into j (S terms).
                        for i in third:
                            p_ij = routing[i, j]
                            if p_ij <= 0.0:
                                continue
                            e_i = network.stations[i].service.D1.sum(axis=1)
                            eps = np.arange(network.phase_orders[i])
                            add(vi.S(i, j, k, eps, a, n, h), p_ij * e_i)

                        eq.add_row(
                            np.concatenate(cols),
                            np.concatenate(vals),
                            0.0,
                            f"H[j={j},k={k},a={a},n={n},h={h}]",
                        )

    # ------------------------------------------------------------------ #
    # Optional redundant families (ablation / numerics experiments)
    # ------------------------------------------------------------------ #
    if include_redundant:
        # Family B: phase-aggregated cut balance at each level.
        for k in range(M):
            st_k = network.stations[k]
            Kk = st_k.phases
            e_k = st_k.service.D1.sum(axis=1)
            qkk = routing[k, k]
            sources = [j for j in range(M) if j != k and routing[j, k] > 0.0]
            levels = np.arange(N + 1)
            c_k = st_k.rate_scale(levels)
            for n in range(1, N + 1):
                cols: list[np.ndarray] = []
                vals: list[np.ndarray] = []
                for h in range(Kk):
                    for j in sources:
                        c_j, v_j = _source_arrival_terms(network, vi, j, k, n - 1, h)
                        cols.append(c_j)
                        vals.append(routing[j, k] * v_j)
                h_all = np.arange(Kk)
                cols.append(vi.pi(k, n, h_all))
                vals.append(-c_k[n] * (1.0 - qkk) * e_k)
                eq.add_row(
                    np.concatenate(cols),
                    np.concatenate(vals),
                    0.0,
                    f"B[k={k},n={n}]",
                )
        # Family F: throughput flow balance X_k = sum_j p_jk X_j.
        xexprs = []
        for k in range(M):
            st_k = network.stations[k]
            Kk = st_k.phases
            e_k = st_k.service.D1.sum(axis=1)
            levels = np.arange(N + 1)
            c_k = st_k.rate_scale(levels)
            nn, hh = np.meshgrid(levels, np.arange(Kk), indexing="ij")
            cols = vi.pi(k, nn.ravel(), hh.ravel())
            vals = (c_k[:, None] * e_k[None, :]).ravel()
            xexprs.append((cols, vals))
        for k in range(M - 1):  # one equation is redundant by construction
            cols = [xexprs[k][0]]
            vals = [xexprs[k][1]]
            for j in range(M):
                if routing[j, k] > 0.0:
                    cols.append(xexprs[j][0])
                    vals.append(-routing[j, k] * xexprs[j][1])
            eq.add_row(
                np.concatenate(cols), np.concatenate(vals), 0.0, f"F[k={k}]"
            )

    A_eq, b_eq = eq.matrix(vi.size)
    A_ub, b_ub = ub.matrix(vi.size)
    lb, hi = vi.default_bounds()
    return ConstraintSystem(
        vi=vi,
        A_eq=A_eq,
        b_eq=b_eq,
        A_ub=A_ub,
        b_ub=b_ub,
        lb=lb,
        ub=hi,
        eq_labels=eq.labels,
        ub_labels=ub.labels,
    )

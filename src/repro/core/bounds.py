"""User-facing bound computation — the paper's headline methodology.

``bound_metric`` returns exact lower/upper bounds on a single performance
index of a closed MAP network; ``solve_bounds`` computes the standard set
(per-station utilization/throughput/mean queue length, system throughput,
response time) in one shot, reusing the assembled constraint system.

Response-time bounds follow the paper's Little's-law route:
``R_min = N / X_max`` and ``R_max = N / X_min``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import ConstraintSystem, build_constraints
from repro.core.lp import optimize_metric
from repro.core.objectives import LinearMetric, system_throughput_metric
from repro.network.model import Network, require_closed

__all__ = ["Interval", "BoundsResult", "bound_metric", "solve_bounds", "response_time_bounds"]


@dataclass(frozen=True)
class Interval:
    """A certified [lower, upper] bound pair."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-9 * max(1.0, abs(self.upper)):
            raise ValueError(f"lower {self.lower} exceeds upper {self.upper}")

    @property
    def width(self) -> float:
        return self.upper - self.lower

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)

    def contains(self, value: float, atol: float = 1e-7) -> bool:
        """True if ``value`` lies inside the interval (with tolerance)."""
        return self.lower - atol <= value <= self.upper + atol

    def relative_width(self) -> float:
        """Width relative to the midpoint (tightness measure)."""
        mid = abs(self.midpoint)
        return self.width / mid if mid > 0 else float("inf")


@dataclass
class BoundsResult:
    """Bounds on the standard metric set of a network."""

    network: Network
    utilization: list[Interval]
    throughput: list[Interval]
    queue_length: list[Interval]
    system_throughput: Interval
    response_time: Interval

    def station_summary(self) -> str:
        """ASCII table of per-station bounds (experiment harness output)."""
        from repro.utils.tables import format_table

        rows = []
        for k, st in enumerate(self.network.stations):
            rows.append(
                [
                    st.name,
                    self.utilization[k].lower,
                    self.utilization[k].upper,
                    self.throughput[k].lower,
                    self.throughput[k].upper,
                    self.queue_length[k].lower,
                    self.queue_length[k].upper,
                ]
            )
        return format_table(
            ["station", "U.lo", "U.hi", "X.lo", "X.hi", "Q.lo", "Q.hi"], rows
        )


def bound_metric(
    network: Network,
    metric: LinearMetric,
    system: ConstraintSystem | None = None,
) -> Interval:
    """Exact [min, max] of a linear metric over the marginal polytope."""
    require_closed(network, "lp")
    system = system or build_constraints(network)
    lo = optimize_metric(system, metric, "min").value
    hi = optimize_metric(system, metric, "max").value
    if lo > hi:  # round-off on a degenerate (point) interval
        lo, hi = hi, lo
    return Interval(lower=lo, upper=hi)


def response_time_bounds(
    network: Network,
    reference: int = 0,
    system: ConstraintSystem | None = None,
    triples: bool | None = None,
) -> Interval:
    """Response-time bounds via Little's law on system-throughput bounds."""
    require_closed(network, "lp")
    system = system or build_constraints(network, triples=triples)
    vi = system.vi
    x_int = bound_metric(network, system_throughput_metric(network, vi, reference), system)
    N = network.population
    return Interval(lower=N / x_int.upper, upper=N / x_int.lower)


def solve_bounds(
    network: Network,
    reference: int = 0,
    include_redundant: bool = False,
    triples: bool | None = None,
) -> BoundsResult:
    """Bounds on the standard metric set (one constraint assembly, 4M+2 LPs).

    Parameters
    ----------
    network:
        Closed MAP network with queue/delay stations.
    reference:
        Station whose throughput defines system throughput and ``R = N/X``.
    include_redundant:
        Forwarded to :func:`repro.core.constraints.build_constraints`.
    triples:
        Constraint tier selector (None = auto); see
        :func:`repro.core.constraints.build_constraints`.
    """
    # Deferred import: runtime.batch depends on this module for the result
    # types, so the delegation can only be resolved at call time.
    from repro.runtime.batch import BatchLPSolver

    solver = BatchLPSolver(
        network, triples=triples, include_redundant=include_redundant
    )
    return solver.standard_bounds(reference=reference)

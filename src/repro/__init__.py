"""repro — MAP queueing networks.

Reproduction of Casale, Mi, Smirni, "Versatile Models of Systems Using MAP
Queueing Networks" (2008): closed queueing networks with Markovian Arrival
Process service, exact CTMC analysis, linear-programming performance bounds
from marginal cut balances, baselines, and a discrete-event simulator.

Public API highlights
---------------------
``repro.maps``      MAP construction/fitting/sampling
``repro.network``   closed MAP network models and the exact solver
``repro.core``      the paper's LP bound methodology
``repro.baselines`` MVA / ABA / balanced-job / decomposition comparators
``repro.sim``       discrete-event simulation
``repro.workloads`` the TPC-W-style case study generator
"""

__version__ = "0.1.0"

"""Bounds-driven configuration planning (the paper's future work, §4).

"Future work will focus on defining dynamic resource allocation policies
that strive to minimize request round-trip times under temporal dependent
workloads.  This can be done ... at the system-level by exploring in real
time (e.g., with the proposed bounds) alternative network configurations
that lead to improved performance."

:func:`rank_configurations` scores candidate networks by their *certified*
worst-case response time (the LP upper bound), and
:func:`greedy_speed_allocation` spends a multiplicative speed budget across
stations to minimize that certificate — burstiness-aware capacity planning
that a mean-value model cannot do.
"""

from repro.planning.allocation import (
    ConfigurationScore,
    rank_configurations,
    greedy_speed_allocation,
)

__all__ = [
    "ConfigurationScore",
    "rank_configurations",
    "greedy_speed_allocation",
]

"""Configuration search driven by the LP bounds.

All decisions are made on *certified* quantities: a configuration is
preferred when its response-time **upper bound** is lower, so the chosen
configuration carries a performance guarantee rather than a point estimate
— exactly the "explore alternative configurations with the proposed
bounds" policy sketched in the paper's conclusions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import Interval, response_time_bounds
from repro.maps.operations import rescale
from repro.network.model import Network
from repro.network.stations import Station
from repro.utils.errors import ValidationError

__all__ = ["ConfigurationScore", "rank_configurations", "greedy_speed_allocation"]


@dataclass(frozen=True)
class ConfigurationScore:
    """A candidate configuration with its certified response-time interval."""

    label: str
    network: Network
    response_time: Interval

    @property
    def certificate(self) -> float:
        """The guaranteed (upper-bound) response time."""
        return self.response_time.upper


def rank_configurations(
    candidates: "dict[str, Network] | list[tuple[str, Network]]",
    reference: int = 0,
    triples: bool | None = None,
) -> list[ConfigurationScore]:
    """Score candidate networks by certified response time, best first.

    Parameters
    ----------
    candidates:
        Labeled candidate networks (same population recommended; the
        certificates are comparable regardless, but mixing scenarios is on
        the caller).
    reference:
        Reference station for ``R = N / X``.
    triples:
        Constraint-tier selector forwarded to the bound computation.
    """
    items = candidates.items() if isinstance(candidates, dict) else candidates
    scores = [
        ConfigurationScore(
            label=label,
            network=net,
            response_time=response_time_bounds(net, reference, triples=triples),
        )
        for label, net in items
    ]
    if not scores:
        raise ValidationError("no candidate configurations supplied")
    return sorted(scores, key=lambda s: s.certificate)


def _speed_up(station: Station, factor: float) -> Station:
    return Station(
        name=station.name,
        service=rescale(station.service, factor),
        kind=station.kind,
        servers=station.servers,
    )


def greedy_speed_allocation(
    network: Network,
    total_budget: float,
    step: float = 1.25,
    reference: int = 0,
    triples: bool | None = None,
) -> tuple[Network, list[ConfigurationScore]]:
    """Allocate a multiplicative speed budget to minimize certified R.

    Repeatedly spends a factor ``step`` of speedup on whichever station
    (greedily, one LP evaluation per candidate) lowers the response-time
    upper bound the most, until the combined speedup would exceed
    ``total_budget``.  Returns the final network and the audit trail of
    accepted steps.

    This is deliberately a *policy skeleton*: each step is certified, so
    the trail doubles as a what-if report for capacity planning.
    """
    if total_budget < 1.0:
        raise ValidationError(f"total_budget must be >= 1, got {total_budget}")
    if step <= 1.0:
        raise ValidationError(f"step must be > 1, got {step}")
    current = network
    spent = 1.0
    trail: list[ConfigurationScore] = [
        ConfigurationScore(
            label="baseline",
            network=current,
            response_time=response_time_bounds(current, reference, triples=triples),
        )
    ]
    while spent * step <= total_budget * (1.0 + 1e-9):
        candidates = {}
        for k, st in enumerate(current.stations):
            label = f"speed up {st.name} x{step:.3g}"
            candidates[label] = current.with_station(k, _speed_up(st, step))
        ranked = rank_configurations(candidates, reference, triples=triples)
        best = ranked[0]
        if best.certificate >= trail[-1].certificate - 1e-12:
            break  # no station improves the certificate any further
        current = best.network
        spent *= step
        trail.append(best)
    return current, trail

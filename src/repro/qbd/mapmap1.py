"""The MAP/MAP/1 queue — bursty arrivals *and* bursty service.

This is the canonical single-queue model of the matrix-analytic literature
the paper cites ("models based on one or two queues ... mostly in matrix
analytic methods research"), and the open-queue counterpart of one station
of a MAP queueing network: service times follow a MAP whose phase freezes
while the queue is idle — the same convention as the network model
(Figure 6 caption).

QBD structure (level = jobs in system, phase = (arrival, service) pair):

* ``A0 = Da1 (x) I``            arrival (level up; service phase untouched),
* ``A1 = Da0 (x) I + I (x) Ds0``  hidden phase transitions of either MAP,
* ``A2 = I (x) Ds1``            service completion (level down),
* ``B1 = Da0 (x) I``            at level 0 only the arrival MAP moves
                                 (service phase frozen).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.maps.map import MAP
from repro.qbd.solver import QbdSolution, solve_qbd
from repro.utils.errors import ValidationError

__all__ = ["MapMap1Queue"]


@dataclass(frozen=True)
class MapMap1Queue:
    """MAP/MAP/1 queue with MAP arrivals and MAP service."""

    arrivals: MAP
    service: MAP
    label: "str | None" = None

    @property
    def offered_load(self) -> float:
        """``rho = lambda_arrivals / mu_service``."""
        return self.arrivals.rate / self.service.rate

    @property
    def is_stable(self) -> bool:
        return self.offered_load < 1.0

    @property
    def n_phases(self) -> int:
        return self.arrivals.order * self.service.order

    @cached_property
    def solution(self) -> QbdSolution:
        """Matrix-geometric stationary solution (raises if unstable)."""
        if not self.is_stable:
            raise ValidationError(
                f"MAP/MAP/1 is unstable: rho = {self.offered_load:.4f} >= 1"
            )
        Ia = np.eye(self.arrivals.order)
        Is = np.eye(self.service.order)
        A0 = np.kron(self.arrivals.D1, Is)
        A1 = np.kron(self.arrivals.D0, Is) + np.kron(Ia, self.service.D0)
        A2 = np.kron(Ia, self.service.D1)
        B1 = np.kron(self.arrivals.D0, Is)
        return solve_qbd(A0=A0, A1=A1, A2=A2, B1=B1, label=self.label)

    # ------------------------------------------------------------------ #
    # performance measures
    # ------------------------------------------------------------------ #
    def queue_length_distribution(self, max_level: int) -> np.ndarray:
        """``P[N = n]`` for n = 0..max_level."""
        sol = self.solution
        return np.array([sol.level_probability(n) for n in range(max_level + 1)])

    @cached_property
    def utilization(self) -> float:
        """``P[busy]`` — equals ``rho`` (a built-in consistency check)."""
        return 1.0 - self.solution.idle_probability()

    @cached_property
    def mean_queue_length(self) -> float:
        """``E[N]`` including the job in service."""
        return self.solution.mean_level()

    @cached_property
    def mean_response_time(self) -> float:
        """``E[T] = E[N] / lambda`` (Little)."""
        return self.mean_queue_length / self.arrivals.rate

    def tail_probability(self, n: int) -> float:
        """``P[N >= n]``."""
        return self.solution.tail_probability(n)

    def caudal_characteristic(self) -> float:
        """Spectral radius of ``R`` — the queue-tail decay rate."""
        return float(max(abs(v) for v in np.linalg.eigvals(self.solution.R)))

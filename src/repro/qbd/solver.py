"""Matrix-geometric solution of level-independent QBD processes.

A QBD is a CTMC on states ``(level n >= 0, phase h)`` whose generator has
block-tridiagonal, level-independent structure above the boundary:

    Q = [ B1  B0            ]
        [ A2  A1  A0        ]
        [     A2  A1  A0    ]
        [         ...       ]

with ``A0`` (level up), ``A1`` (local), ``A2`` (level down), and boundary
blocks ``B1`` (local at level 0) and ``B0`` (up from level 0; defaults to
``A0``).  The stationary distribution is matrix-geometric:
``pi_n = pi_1 R^{n-1}`` for n >= 1, where ``R`` is the minimal nonnegative
solution of ``A0 + R A1 + R^2 A2 = 0`` (Neuts).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.obs.core import get_telemetry
from repro.utils.errors import NearInstabilityWarning, SolverError, ValidationError

__all__ = ["solve_r_matrix", "QbdSolution", "solve_qbd", "NEAR_INSTABILITY_EPS"]

#: Default spectral-radius margin below 1 that triggers a
#: :class:`~repro.utils.errors.NearInstabilityWarning`.
NEAR_INSTABILITY_EPS = 1e-4


def _check_drift(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray, label: str) -> None:
    """Fail fast on non-positive-recurrent QBDs via the mean-drift condition.

    The phase process with generator ``A = A0 + A1 + A2`` has stationary
    vector ``theta``; the QBD is positive recurrent iff the mean upward
    drift ``theta A0 1`` is strictly below the downward drift
    ``theta A2 1`` (Neuts).  Checking this *before* iterating turns the
    unstable case from a long non-converging grind (or an opaque linear-
    algebra error) into an immediate, structured :class:`SolverError`.
    """
    K = A0.shape[0]
    A = A0 + A1 + A2
    # theta A = 0, theta 1 = 1  (replace one equation by normalization)
    B = A.T.copy()
    B[-1, :] = 1.0
    rhs = np.zeros(K)
    rhs[-1] = 1.0
    try:
        theta = np.linalg.solve(B, rhs)
    except np.linalg.LinAlgError:
        return  # reducible phase process; let the iteration decide
    ones = np.ones(K)
    drift_up = float(theta @ A0 @ ones)
    drift_down = float(theta @ A2 @ ones)
    if drift_up >= drift_down * (1.0 - 1e-12):
        raise SolverError(
            f"{label}: QBD is not positive recurrent — mean upward drift "
            f"{drift_up:.6g} >= downward drift {drift_down:.6g} (offered "
            "load >= capacity); reduce the arrival rate or speed the server"
        )


def solve_r_matrix(
    A0: np.ndarray,
    A1: np.ndarray,
    A2: np.ndarray,
    tol: float = 1e-13,
    max_iter: int = 200_000,
    label: str | None = None,
    near_instability_eps: float = NEAR_INSTABILITY_EPS,
) -> np.ndarray:
    """Minimal nonnegative solution ``R`` of ``A0 + R A1 + R^2 A2 = 0``.

    Stability is decided *first* from the mean-drift condition, so an
    unstable QBD raises a structured :class:`SolverError` immediately
    instead of hanging in a non-converging iteration.  The stable case is
    solved by logarithmic reduction (Latouche & Ramaswami), which converges
    quadratically even arbitrarily close to the stability boundary — the
    regime where the classical functional iteration needs hundreds of
    thousands of steps.  When the spectral radius of ``R`` exceeds
    ``1 - near_instability_eps``, a
    :class:`~repro.utils.errors.NearInstabilityWarning` is emitted naming
    ``label`` (e.g. the offending station), because queue-length moments
    are then numerically extreme.

    Parameters
    ----------
    A0, A1, A2:
        Level-up, local, and level-down generator blocks.
    tol:
        Convergence tolerance on the stochasticity defect of ``G``.
    max_iter:
        Cap on functional-iteration steps of the fallback path (kept for
        backward compatibility; logarithmic reduction needs ~50 steps).
    label:
        Context string for warnings/errors (e.g. ``"station 'db'"``).
    near_instability_eps:
        Spectral-radius margin below 1 that triggers the warning.
    """
    A0 = np.asarray(A0, dtype=float)
    A1 = np.asarray(A1, dtype=float)
    A2 = np.asarray(A2, dtype=float)
    K = A0.shape[0]
    for name, M in (("A0", A0), ("A1", A1), ("A2", A2)):
        if M.shape != (K, K):
            raise ValidationError(f"{name} must be {K}x{K}, got {M.shape}")
    if np.any(A0 < -1e-12) or np.any(A2 < -1e-12):
        raise ValidationError("A0 and A2 must be nonnegative rate blocks")
    rowsum = (A0 + A1 + A2) @ np.ones(K)
    if np.any(np.abs(rowsum) > 1e-8 * max(1.0, np.abs(A1).max())):
        raise ValidationError("A0 + A1 + A2 must have zero row sums")

    where = label if label is not None else "QBD"
    with get_telemetry().span("qbd.r_matrix", phases=K, label=where):
        _check_drift(A0, A1, A2, where)

        R = _r_by_logarithmic_reduction(A0, A1, A2, tol)
        if R is None:  # pragma: no cover - numerical fallback
            R = _r_by_functional_iteration(A0, A1, A2, tol, max_iter, where)
        if np.any(R < -1e-9):
            raise SolverError(f"{where}: R-matrix solve produced negative entries")
        R = np.clip(R, 0.0, None)
        sr = max(abs(v) for v in np.linalg.eigvals(R))
        if sr >= 1.0 - 1e-10:
            raise SolverError(
                f"{where}: spectral radius of R is >= 1: the QBD is not "
                "positive recurrent (offered load >= capacity)"
            )
        if sr > 1.0 - near_instability_eps:
            warnings.warn(
                NearInstabilityWarning(
                    f"{where}: spectral radius of R is {sr:.8f} > "
                    f"1 - {near_instability_eps:g}; the queue is stable but so "
                    "close to saturation that queue-length moments and tails "
                    "are numerically extreme"
                ),
                stacklevel=2,
            )
    return R


def _r_by_logarithmic_reduction(
    A0: np.ndarray, A1: np.ndarray, A2: np.ndarray, tol: float
) -> "np.ndarray | None":
    """Logarithmic-reduction solve of ``G``, lifted to ``R``.

    Uniformizes the CTMC blocks to a DTMC (``G`` is invariant under
    uniformization), runs Latouche–Ramaswami doubling until ``G`` is
    stochastic to within ``tol``, then recovers
    ``R = A0 (-(A1 + A0 G))^-1``.  Returns ``None`` if a reduction step
    goes numerically singular (caller falls back to functional iteration).
    """
    K = A0.shape[0]
    c = float(np.max(-np.diag(A1)))
    if c <= 0:
        return None
    B0 = A0 / c
    B1 = np.eye(K) + A1 / c
    B2 = A2 / c
    eye = np.eye(K)
    try:
        inv = np.linalg.solve(eye - B1, np.hstack([B0, B2]))
    except np.linalg.LinAlgError:
        return None
    H, L = inv[:, :K], inv[:, K:]
    G = L.copy()
    T = H.copy()
    for _ in range(200):
        if np.abs(1.0 - G.sum(axis=1)).max() < tol or np.abs(T).max() < tol:
            break
        U = H @ L + L @ H
        try:
            sol = np.linalg.solve(eye - U, np.hstack([H @ H, L @ L]))
        except np.linalg.LinAlgError:
            return None
        H, L = sol[:, :K], sol[:, K:]
        G = G + T @ L
        T = T @ H
    else:
        # 200 doublings cover 2^200 levels; not converging means the
        # reduction stalled numerically (e.g. a reducible phase process
        # the drift precheck could not classify).  Never build R from an
        # unconverged G — defer to the functional iteration, which raises
        # a structured SolverError on true non-convergence.
        return None
    U_mat = A1 + A0 @ G
    try:
        return A0 @ np.linalg.inv(-U_mat)
    except np.linalg.LinAlgError:
        return None


def _r_by_functional_iteration(
    A0: np.ndarray,
    A1: np.ndarray,
    A2: np.ndarray,
    tol: float,
    max_iter: int,
    where: str,
) -> np.ndarray:
    """Classic linear fixed point ``R <- -(A0 + R^2 A2) A1^{-1}``.

    Kept as the fallback when logarithmic reduction hits a singular
    reduction step; converges monotonically to the minimal solution for
    irreducible positive-recurrent QBDs.
    """
    A1_inv = np.linalg.inv(A1)
    R = np.zeros_like(A0)
    delta = np.inf
    for _ in range(max_iter):
        R_next = -(A0 + R @ R @ A2) @ A1_inv
        delta = np.abs(R_next - R).max()
        R = R_next
        if delta < tol:
            return R
    raise SolverError(
        f"{where}: R-matrix iteration did not converge in {max_iter} steps "
        f"(last delta {delta:.3g}); is the QBD positive recurrent?"
    )


@dataclass
class QbdSolution:
    """Stationary solution of a QBD in matrix-geometric form."""

    pi0: np.ndarray
    pi1: np.ndarray
    R: np.ndarray

    @cached_property
    def _neumann(self) -> np.ndarray:
        """``(I - R)^-1`` — the tail summation operator."""
        K = self.R.shape[0]
        return np.linalg.inv(np.eye(K) - self.R)

    def level(self, n: int) -> np.ndarray:
        """Stationary probability vector of level ``n`` (phase-resolved)."""
        if n < 0:
            raise ValueError(f"level must be >= 0, got {n}")
        if n == 0:
            return self.pi0.copy()
        return self.pi1 @ np.linalg.matrix_power(self.R, n - 1)

    def level_probability(self, n: int) -> float:
        """``P[level = n]``."""
        return float(self.level(n).sum())

    def idle_probability(self) -> float:
        """``P[level = 0]``."""
        return float(self.pi0.sum())

    def mean_level(self) -> float:
        """``E[level] = pi_1 (I - R)^-2 1``."""
        K = self.R.shape[0]
        ones = np.ones(K)
        return float(self.pi1 @ self._neumann @ self._neumann @ ones)

    def tail_probability(self, n: int) -> float:
        """``P[level >= n]`` for n >= 1 (geometric tail sum)."""
        if n < 1:
            return 1.0
        vec = self.pi1 @ np.linalg.matrix_power(self.R, n - 1)
        return float(vec @ self._neumann @ np.ones(self.R.shape[0]))


def solve_qbd(
    A0: np.ndarray,
    A1: np.ndarray,
    A2: np.ndarray,
    B1: np.ndarray,
    B0: np.ndarray | None = None,
    tol: float = 1e-13,
    label: str | None = None,
    near_instability_eps: float = NEAR_INSTABILITY_EPS,
) -> QbdSolution:
    """Solve a level-independent QBD with boundary blocks ``(B1, B0)``.

    The boundary equations are::

        pi_0 B1 + pi_1 A2            = 0
        pi_0 B0 + pi_1 (A1 + R A2)   = 0

    normalized by ``pi_0 1 + pi_1 (I - R)^-1 1 = 1``.  ``label`` and
    ``near_instability_eps`` are forwarded to :func:`solve_r_matrix` so
    instability diagnostics name the offending model component.
    """
    A0 = np.asarray(A0, dtype=float)
    B0 = A0 if B0 is None else np.asarray(B0, dtype=float)
    B1 = np.asarray(B1, dtype=float)
    K = A0.shape[0]
    R = solve_r_matrix(
        A0, A1, A2, tol=tol, label=label,
        near_instability_eps=near_instability_eps,
    )

    # Assemble the boundary linear system for the row vector [pi0, pi1].
    top = np.hstack([B1, B0])
    bottom = np.hstack([np.asarray(A2, dtype=float), A1 + R @ np.asarray(A2)])
    M = np.vstack([top, bottom])  # [pi0, pi1] @ M = 0
    A = M.T.copy()
    # Replace one equation by the normalization condition.
    neumann = np.linalg.inv(np.eye(K) - R)
    norm_row = np.concatenate([np.ones(K), neumann @ np.ones(K)])
    A[-1, :] = norm_row
    b = np.zeros(2 * K)
    b[-1] = 1.0
    try:
        x = np.linalg.solve(A, b)
    except np.linalg.LinAlgError as exc:
        raise SolverError(f"QBD boundary system is singular: {exc}") from exc
    if np.any(x < -1e-8):
        raise SolverError("QBD boundary solve produced negative probabilities")
    x = np.clip(x, 0.0, None)
    return QbdSolution(pi0=x[:K], pi1=x[K:], R=R)

"""Matrix-geometric solution of level-independent QBD processes.

A QBD is a CTMC on states ``(level n >= 0, phase h)`` whose generator has
block-tridiagonal, level-independent structure above the boundary:

    Q = [ B1  B0            ]
        [ A2  A1  A0        ]
        [     A2  A1  A0    ]
        [         ...       ]

with ``A0`` (level up), ``A1`` (local), ``A2`` (level down), and boundary
blocks ``B1`` (local at level 0) and ``B0`` (up from level 0; defaults to
``A0``).  The stationary distribution is matrix-geometric:
``pi_n = pi_1 R^{n-1}`` for n >= 1, where ``R`` is the minimal nonnegative
solution of ``A0 + R A1 + R^2 A2 = 0`` (Neuts).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.utils.errors import SolverError, ValidationError

__all__ = ["solve_r_matrix", "QbdSolution", "solve_qbd"]


def solve_r_matrix(
    A0: np.ndarray,
    A1: np.ndarray,
    A2: np.ndarray,
    tol: float = 1e-13,
    max_iter: int = 200_000,
) -> np.ndarray:
    """Minimal nonnegative solution ``R`` of ``A0 + R A1 + R^2 A2 = 0``.

    Uses the classic functional iteration
    ``R <- -(A0 + R^2 A2) A1^{-1}`` starting from 0, which converges
    monotonically to the minimal solution for irreducible positive-
    recurrent QBDs.  Spectral radius of ``R`` below 1 certifies stability.
    """
    A0 = np.asarray(A0, dtype=float)
    A1 = np.asarray(A1, dtype=float)
    A2 = np.asarray(A2, dtype=float)
    K = A0.shape[0]
    for name, M in (("A0", A0), ("A1", A1), ("A2", A2)):
        if M.shape != (K, K):
            raise ValidationError(f"{name} must be {K}x{K}, got {M.shape}")
    if np.any(A0 < -1e-12) or np.any(A2 < -1e-12):
        raise ValidationError("A0 and A2 must be nonnegative rate blocks")
    rowsum = (A0 + A1 + A2) @ np.ones(K)
    if np.any(np.abs(rowsum) > 1e-8 * max(1.0, np.abs(A1).max())):
        raise ValidationError("A0 + A1 + A2 must have zero row sums")

    A1_inv = np.linalg.inv(A1)
    R = np.zeros((K, K))
    for it in range(max_iter):
        R_next = -(A0 + R @ R @ A2) @ A1_inv
        delta = np.abs(R_next - R).max()
        R = R_next
        if delta < tol:
            break
    else:
        raise SolverError(
            f"R-matrix iteration did not converge in {max_iter} steps "
            f"(last delta {delta:.3g}); is the QBD positive recurrent?"
        )
    if np.any(R < -1e-9):
        raise SolverError("R-matrix iteration produced negative entries")
    R = np.clip(R, 0.0, None)
    if max(abs(v) for v in np.linalg.eigvals(R)) >= 1.0 - 1e-10:
        raise SolverError(
            "spectral radius of R is >= 1: the QBD is not positive recurrent "
            "(offered load >= capacity)"
        )
    return R


@dataclass
class QbdSolution:
    """Stationary solution of a QBD in matrix-geometric form."""

    pi0: np.ndarray
    pi1: np.ndarray
    R: np.ndarray

    @cached_property
    def _neumann(self) -> np.ndarray:
        """``(I - R)^-1`` — the tail summation operator."""
        K = self.R.shape[0]
        return np.linalg.inv(np.eye(K) - self.R)

    def level(self, n: int) -> np.ndarray:
        """Stationary probability vector of level ``n`` (phase-resolved)."""
        if n < 0:
            raise ValueError(f"level must be >= 0, got {n}")
        if n == 0:
            return self.pi0.copy()
        return self.pi1 @ np.linalg.matrix_power(self.R, n - 1)

    def level_probability(self, n: int) -> float:
        """``P[level = n]``."""
        return float(self.level(n).sum())

    def idle_probability(self) -> float:
        """``P[level = 0]``."""
        return float(self.pi0.sum())

    def mean_level(self) -> float:
        """``E[level] = pi_1 (I - R)^-2 1``."""
        K = self.R.shape[0]
        ones = np.ones(K)
        return float(self.pi1 @ self._neumann @ self._neumann @ ones)

    def tail_probability(self, n: int) -> float:
        """``P[level >= n]`` for n >= 1 (geometric tail sum)."""
        if n < 1:
            return 1.0
        vec = self.pi1 @ np.linalg.matrix_power(self.R, n - 1)
        return float(vec @ self._neumann @ np.ones(self.R.shape[0]))


def solve_qbd(
    A0: np.ndarray,
    A1: np.ndarray,
    A2: np.ndarray,
    B1: np.ndarray,
    B0: np.ndarray | None = None,
    tol: float = 1e-13,
) -> QbdSolution:
    """Solve a level-independent QBD with boundary blocks ``(B1, B0)``.

    The boundary equations are::

        pi_0 B1 + pi_1 A2            = 0
        pi_0 B0 + pi_1 (A1 + R A2)   = 0

    normalized by ``pi_0 1 + pi_1 (I - R)^-1 1 = 1``.
    """
    A0 = np.asarray(A0, dtype=float)
    B0 = A0 if B0 is None else np.asarray(B0, dtype=float)
    B1 = np.asarray(B1, dtype=float)
    K = A0.shape[0]
    R = solve_r_matrix(A0, A1, A2, tol=tol)

    # Assemble the boundary linear system for the row vector [pi0, pi1].
    top = np.hstack([B1, B0])
    bottom = np.hstack([np.asarray(A2, dtype=float), A1 + R @ np.asarray(A2)])
    M = np.vstack([top, bottom])  # [pi0, pi1] @ M = 0
    A = M.T.copy()
    # Replace one equation by the normalization condition.
    neumann = np.linalg.inv(np.eye(K) - R)
    norm_row = np.concatenate([np.ones(K), neumann @ np.ones(K)])
    A[-1, :] = norm_row
    b = np.zeros(2 * K)
    b[-1] = 1.0
    try:
        x = np.linalg.solve(A, b)
    except np.linalg.LinAlgError as exc:
        raise SolverError(f"QBD boundary system is singular: {exc}") from exc
    if np.any(x < -1e-8):
        raise SolverError("QBD boundary solve produced negative probabilities")
    x = np.clip(x, 0.0, None)
    return QbdSolution(pi0=x[:K], pi1=x[K:], R=R)

"""Open MAP network analysis by station-wise QBD decomposition.

This lifts the repository's single-queue matrix-analytic solvers
(:class:`~repro.qbd.mapm1.MapM1Queue`, :class:`~repro.qbd.mapmap1.MapMap1Queue`)
to whole open networks.  Per-station arrival rates come exactly from the
traffic equations; the arrival *process* each station sees is approximated
from the external MAP:

* ``v_k = 1`` — the station receives the external stream whole (e.g. the
  first queue of a tandem): the arrival MAP is exact.
* ``v_k < 1`` — the station receives a Bernoulli-split share of the
  stream: the external MAP is *thinned* to rate ``lambda v_k``
  (:func:`repro.maps.operations.thin`), which is exact for a split of the
  external flow and a standard decomposition approximation after internal
  hops (departures are not MAP-representable in general).
* ``v_k > 1`` — feedback superposes differently-correlated flows; the
  decomposition falls back to Poisson arrivals at rate ``lambda v_k``
  (the renewal approximation classical decomposition methods make).

Each station then solves its own QBD: MAP/M/1 for exponential service,
MAP/MAP/1 for MAP service (phase frozen while idle, the network
convention), M/G/infinity for delay stations.  Throughputs are exact
(traffic equations); utilizations are exact (``rho_k``); queue lengths and
response times inherit the decomposition approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.maps.builders import exponential
from repro.maps.operations import thin
from repro.network.model import Network
from repro.qbd.mapm1 import MapM1Queue
from repro.qbd.mapmap1 import MapMap1Queue
from repro.utils.errors import UnsupportedNetworkError

__all__ = ["OpenStationResult", "OpenNetworkResult", "solve_open_network"]

#: Tolerance for treating a visit ratio as exactly 1 (unsplit stream).
_V_ONE_TOL = 1e-9


@dataclass(frozen=True)
class OpenStationResult:
    """Decomposed metrics of one station of an open network."""

    name: str
    arrival_rate: float
    utilization: float
    mean_queue_length: float
    mean_response_time: float
    #: How the station's arrival process was modeled: "exact" (direct
    #: entry station fed the whole external stream), "map" (downstream
    #: v = 1 station — external MAP reused as an approximation of the
    #: upstream departures), "thinned" (Bernoulli-split share, v < 1),
    #: "poisson" (feedback fallback, v > 1), "delay" (M/G/inf station),
    #: or "unvisited" (no open traffic).
    arrival_model: str


@dataclass(frozen=True)
class OpenNetworkResult:
    """Station-wise decomposition solution of an open MAP network."""

    network: Network
    stations: tuple[OpenStationResult, ...]

    @property
    def system_throughput(self) -> float:
        """Steady-state flow through the system (= external arrival rate)."""
        return float(self.network.arrivals.rate)

    @property
    def mean_jobs_in_system(self) -> float:
        """Total mean job count across stations."""
        return float(sum(s.mean_queue_length for s in self.stations))

    @property
    def mean_response_time(self) -> float:
        """System response time by Little's law, ``E[N] / lambda``."""
        return self.mean_jobs_in_system / self.system_throughput


def _station_arrivals(network: Network, k: int):
    """Arrival MAP approximation for station ``k`` (see module docstring).

    ``"exact"`` is claimed only for a station that receives the whole
    external stream *directly* (entry probability 1 and no internal
    inflow) — a downstream station with visit ratio 1 sees the upstream
    *departure* process, which the decomposition models with the external
    MAP as an approximation (``"map"``).
    """
    v = float(network.open_visits[k])
    lam_k = float(network.arrival_rates[k])
    ext = network.arrivals
    P_open = network.open_routing_matrix
    if abs(v - 1.0) <= _V_ONE_TOL:
        direct = abs(float(network.entry[k]) - 1.0) <= _V_ONE_TOL
        no_internal_inflow = float(P_open[:, k].sum()) <= _V_ONE_TOL
        return ext, ("exact" if direct and no_internal_inflow else "map")
    if v < 1.0:
        return thin(ext, v), "thinned"
    return exponential(lam_k), "poisson"


def solve_open_network(network: Network) -> OpenNetworkResult:
    """Solve an open MAP network by station-wise QBD decomposition.

    Stations operating within :data:`~repro.qbd.solver.NEAR_INSTABILITY_EPS`
    of saturation emit a
    :class:`~repro.utils.errors.NearInstabilityWarning` naming them (the
    per-station ``label`` threads through the QBD layer).

    Parameters
    ----------
    network:
        An **open** :class:`~repro.network.model.Network` (mixed networks
        interleave closed jobs at the same servers, which this
        decomposition cannot see — use the simulator).

    Returns
    -------
    OpenNetworkResult
        Per-station and system metrics.

    Raises
    ------
    UnsupportedNetworkError
        For non-open networks or multiserver stations (no MAP/M/c solver
        is available).
    """
    if network.kind != "open":
        raise UnsupportedNetworkError(
            "qbd open decomposition", network.kind, supported="open"
        )
    results = []
    for k, st in enumerate(network.stations):
        lam_k = float(network.arrival_rates[k])
        if lam_k <= 0.0:
            results.append(OpenStationResult(
                name=st.name, arrival_rate=0.0, utilization=0.0,
                mean_queue_length=0.0, mean_response_time=0.0,
                arrival_model="unvisited",
            ))
            continue
        if st.kind == "delay":
            # M/G/infinity: E[N] = lambda E[S], no queueing delay.
            results.append(OpenStationResult(
                name=st.name,
                arrival_rate=lam_k,
                utilization=0.0,
                mean_queue_length=lam_k * st.mean_service_time,
                mean_response_time=st.mean_service_time,
                arrival_model="delay",
            ))
            continue
        if st.kind == "multiserver":
            raise UnsupportedNetworkError(
                "qbd open decomposition (multiserver station "
                f"{st.name!r})", "open", supported="single-server open",
            )
        arr, model = _station_arrivals(network, k)
        label = f"station {st.name!r}"
        if st.phases == 1:
            q = MapM1Queue(arr, mu=1.0 / st.mean_service_time, label=label)
        else:
            q = MapMap1Queue(arr, st.service, label=label)
        results.append(OpenStationResult(
            name=st.name,
            arrival_rate=lam_k,
            utilization=float(q.utilization),
            mean_queue_length=float(q.mean_queue_length),
            mean_response_time=float(q.mean_response_time),
            arrival_model=model,
        ))
    return OpenNetworkResult(network=network, stations=tuple(results))

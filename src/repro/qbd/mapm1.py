"""The MAP/M/1 queue — matrix-analytic analysis of one bursty queue.

This is the classical "one queue" model the paper generalizes away from:
MAP arrivals (capturing interarrival burstiness), a single exponential
server, infinite waiting room.  The underlying CTMC is a QBD with

* level   = number of jobs in system,
* phase   = arrival-MAP phase,
* blocks  ``A0 = D1`` (arrival), ``A1 = D0 - mu I`` (phase change /
  service-rate diagonal), ``A2 = mu I`` (departure), boundary ``B1 = D0``.

Stability iff the arrival rate ``lambda`` is below ``mu``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.maps.map import MAP
from repro.qbd.solver import QbdSolution, solve_qbd
from repro.utils.errors import ValidationError

__all__ = ["MapM1Queue"]


@dataclass(frozen=True)
class MapM1Queue:
    """MAP/M/1 queue with arrival process ``arrivals`` and service rate ``mu``."""

    arrivals: MAP
    mu: float
    label: "str | None" = None

    def __post_init__(self) -> None:
        if self.mu <= 0:
            raise ValidationError(f"service rate must be positive, got {self.mu}")

    @property
    def offered_load(self) -> float:
        """``rho = lambda / mu``."""
        return self.arrivals.rate / self.mu

    @property
    def is_stable(self) -> bool:
        return self.offered_load < 1.0

    @cached_property
    def solution(self) -> QbdSolution:
        """Matrix-geometric stationary solution (raises if unstable)."""
        if not self.is_stable:
            raise ValidationError(
                f"MAP/M/1 is unstable: rho = {self.offered_load:.4f} >= 1"
            )
        K = self.arrivals.order
        D0, D1 = self.arrivals.D0, self.arrivals.D1
        I = np.eye(K)
        return solve_qbd(
            A0=D1,
            A1=D0 - self.mu * I,
            A2=self.mu * I,
            B1=D0,
            label=self.label,
        )

    # ------------------------------------------------------------------ #
    # performance measures
    # ------------------------------------------------------------------ #
    def queue_length_distribution(self, max_level: int) -> np.ndarray:
        """``P[N = n]`` for n = 0..max_level."""
        sol = self.solution
        return np.array([sol.level_probability(n) for n in range(max_level + 1)])

    @cached_property
    def utilization(self) -> float:
        """``P[busy] = 1 - P[N = 0]`` (equals ``rho`` — a consistency check)."""
        return 1.0 - self.solution.idle_probability()

    @cached_property
    def mean_queue_length(self) -> float:
        """``E[N]`` including the job in service."""
        return self.solution.mean_level()

    @cached_property
    def mean_response_time(self) -> float:
        """``E[T] = E[N] / lambda`` (Little)."""
        return self.mean_queue_length / self.arrivals.rate

    @cached_property
    def mean_waiting_time(self) -> float:
        """``E[W] = E[T] - 1/mu``."""
        return self.mean_response_time - 1.0 / self.mu

    def tail_probability(self, n: int) -> float:
        """``P[N >= n]`` — the geometric tail that burstiness inflates."""
        return self.solution.tail_probability(n)

    def caudal_characteristic(self) -> float:
        """Spectral radius of ``R``: the decay rate of ``P[N >= n]``.

        For Poisson arrivals this equals ``rho``; temporal dependence pushes
        it toward 1, producing the heavy queue tails the paper's motivation
        describes.
        """
        return float(max(abs(v) for v in np.linalg.eigvals(self.solution.R)))

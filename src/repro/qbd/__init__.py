"""Matrix-geometric methods for quasi-birth-death (QBD) processes.

The paper situates its contribution against the matrix-analytic state of
the art: "only small autocorrelated models based on one or two queues have
been considered in the literature, mostly in matrix analytic methods
research".  This subpackage provides that classical layer — the
matrix-geometric solution of level-independent QBDs (Neuts' R-matrix,
computed by logarithmic reduction with a mean-drift stability precheck)
and the MAP/M/1 and MAP/MAP/1 queues built on it — both as a substrate in
its own right and, via :mod:`repro.qbd.opennet`, lifted to whole open MAP
networks by station-wise decomposition.
"""

from repro.qbd.solver import (
    NEAR_INSTABILITY_EPS,
    QbdSolution,
    solve_qbd,
    solve_r_matrix,
)
from repro.qbd.mapm1 import MapM1Queue
from repro.qbd.mapmap1 import MapMap1Queue
from repro.qbd.opennet import (
    OpenNetworkResult,
    OpenStationResult,
    solve_open_network,
)

__all__ = [
    "NEAR_INSTABILITY_EPS",
    "solve_r_matrix",
    "QbdSolution",
    "solve_qbd",
    "MapM1Queue",
    "MapMap1Queue",
    "OpenNetworkResult",
    "OpenStationResult",
    "solve_open_network",
]

"""Matrix-geometric methods for quasi-birth-death (QBD) processes.

The paper situates its contribution against the matrix-analytic state of
the art: "only small autocorrelated models based on one or two queues have
been considered in the literature, mostly in matrix analytic methods
research".  This subpackage provides that classical layer — the
matrix-geometric solution of level-independent QBDs (Neuts' R-matrix) and
the MAP/M/1 queue built on it — both as a substrate in its own right and
as an independent oracle for the open-queue limits of the network tools.
"""

from repro.qbd.solver import solve_r_matrix, QbdSolution, solve_qbd
from repro.qbd.mapm1 import MapM1Queue
from repro.qbd.mapmap1 import MapMap1Queue

__all__ = [
    "solve_r_matrix",
    "QbdSolution",
    "solve_qbd",
    "MapM1Queue",
    "MapMap1Queue",
]

"""Content-addressed fingerprints of models and solver invocations.

A fingerprint is a SHA-256 digest of a *canonical* byte serialization of a
:class:`~repro.network.model.Network` plus the solver method and its
options.  Two invocations with the same fingerprint are guaranteed to
describe the same computation, so the digest is a safe cache key — stable
across process restarts, interpreter versions, and machines (float bytes are
serialized in fixed little-endian IEEE-754, independent of platform order).

The schema version below is baked into every digest: bump it whenever the
semantics of any registered solver change, so stale on-disk cache entries
from older code are never served.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.network.model import Network

__all__ = [
    "FingerprintError",
    "fingerprint_network",
    "fingerprint_solve",
    "fingerprint_sweep",
]

#: Bump to invalidate every existing cache entry (schema/solver semantics).
SCHEMA_VERSION = 1


class FingerprintError(TypeError):
    """An object cannot be canonically serialized (i.e. is not cacheable)."""


def _canon(obj: Any) -> bytes:
    """Canonical byte encoding of a JSON-ish value tree.

    Supports None, bool, int, float, str, numpy scalars/arrays, and
    (possibly nested) list/tuple/dict.  Dict keys are sorted so option
    dictionaries hash identically regardless of construction order.
    """
    if obj is None:
        return b"n"
    if isinstance(obj, (bool, np.bool_)):
        return b"b1" if obj else b"b0"
    if isinstance(obj, (int, np.integer)):
        return b"i" + str(int(obj)).encode()
    if isinstance(obj, (float, np.floating)):
        return b"f" + np.float64(obj).astype("<f8").tobytes()
    if isinstance(obj, str):
        data = obj.encode()
        return b"s" + str(len(data)).encode() + b":" + data
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj, dtype=np.float64)
        shape = ",".join(str(d) for d in arr.shape).encode()
        return b"a" + shape + b":" + arr.astype("<f8").tobytes()
    if isinstance(obj, (list, tuple)):
        return b"l" + b"".join(_canon(v) for v in obj) + b"e"
    if isinstance(obj, dict):
        parts = []
        for key in sorted(obj):
            if not isinstance(key, str):
                raise FingerprintError(f"dict keys must be str, got {key!r}")
            parts.append(_canon(key) + _canon(obj[key]))
        return b"d" + b"".join(parts) + b"e"
    raise FingerprintError(
        f"cannot fingerprint object of type {type(obj).__name__}: {obj!r}"
    )


def _network_tree(network: Network) -> dict:
    """The canonical value tree of a network (everything that defines it).

    Closed networks serialize exactly as they did before the unified
    ``Network`` redesign — same keys, same order-insensitive dict encoding —
    so pre-redesign digests (and every ``.repro-cache`` entry keyed by them)
    remain valid.  Open and mixed networks add their defining extras under
    new keys, which can never collide with a closed tree.
    """
    tree: dict = {
        "stations": [
            {
                "name": st.name,
                "kind": st.kind,
                "servers": st.servers,
                "D0": st.service.D0,
                "D1": st.service.D1,
            }
            for st in network.stations
        ],
        "routing": network.routing,
    }
    kind = getattr(network, "kind", "closed")
    if kind in ("closed", "mixed"):
        tree["population"] = network.population
    if kind != "closed":
        arrivals = network.arrivals
        tree["net_kind"] = kind
        tree["arrivals"] = {"D0": arrivals.D0, "D1": arrivals.D1}
        tree["entry"] = network.entry
        if network.open_routing is not None:
            tree["open_routing"] = network.open_routing
    return tree


def fingerprint_network(network: Network) -> str:
    """Hex digest identifying the model alone (no solver options)."""
    return hashlib.sha256(
        _canon({"schema": SCHEMA_VERSION, "network": _network_tree(network)})
    ).hexdigest()


def fingerprint_solve(
    network: Network, method: str, opts: dict[str, Any]
) -> str:
    """Hex digest identifying one ``solve(network, method, **opts)`` call.

    Raises
    ------
    FingerprintError
        If any option value is not canonically serializable (e.g. a live
        ``FlowTap`` or an open generator): such calls must bypass the cache.
    """
    tree = {
        "schema": SCHEMA_VERSION,
        "network": _network_tree(network),
        "method": method,
        "opts": dict(opts),
    }
    return hashlib.sha256(_canon(tree)).hexdigest()


def fingerprint_sweep(
    networks: "list[Network] | tuple[Network, ...]",
    method: str,
    opts: dict[str, Any] | None = None,
    per_point_opts: "list[dict[str, Any]] | None" = None,
) -> str:
    """Hex digest identifying a whole sweep (order-sensitive).

    The digest covers the per-point solve fingerprints, so two sweeps
    match exactly when every point would hit the same cache entries —
    scenario-declared sweeps (:class:`~repro.runtime.sweep.SweepSpec`) and
    hand-built network lists that compile to the same models are
    identified.

    Parameters
    ----------
    networks:
        The per-point models, in sweep order.
    method:
        Registered solver method name.
    opts:
        Solver options shared by every point (ignored when
        ``per_point_opts`` is given).
    per_point_opts:
        Per-point option dicts, one per network — used by
        :meth:`~repro.runtime.sweep.SweepSpec.fingerprint` to mix the
        derived per-point ``rng`` seeds of stochastic methods into the
        digest, mirroring the cache keys the runner would actually use.

    Returns
    -------
    str
        SHA-256 hex digest.
    """
    if per_point_opts is None:
        per_point_opts = [dict(opts or {})] * len(networks)
    elif len(per_point_opts) != len(networks):
        raise ValueError(
            f"per_point_opts has {len(per_point_opts)} entries for "
            f"{len(networks)} networks"
        )
    keys = [
        fingerprint_solve(net, method, dict(o))
        for net, o in zip(networks, per_point_opts)
    ]
    return hashlib.sha256(
        _canon({"schema": SCHEMA_VERSION, "sweep": keys})
    ).hexdigest()

"""Parallel parameter sweeps over the solver registry.

Every figure of the paper is a sweep — populations for Fig. 4/8/Table 1,
browser counts for Fig. 3, (M, N) grids for the scalability claim.  The
:class:`SweepRunner` fans the per-point solves across a
``concurrent.futures.ProcessPoolExecutor``; points are independent CTMC/LP/
simulation solves, so the speedup is near-linear until memory bandwidth
saturates.

Determinism: per-point RNG seeds are derived from ``(base_seed, index)``
through :class:`numpy.random.SeedSequence`, and the derivation is identical
on the serial and parallel paths — a sweep with the same ``base_seed``
returns bit-identical results whichever executor runs it, in input order.

Workers build their own :class:`~repro.runtime.registry.SolverRegistry`
pointing at the *same* disk cache directory, so a re-run of a sweep is
served from disk without recomputation regardless of worker count.

LP sweeps additionally warm-start across points: the persistent HiGHS
backend keeps per-``(metric, sense)`` basis lineages in a process-wide
store (:func:`repro.core.lpbackend.get_lp_lineage_store`), so adjacent
populations solved in the same process — the whole sweep when serial, each
worker's share when parallel — start dual simplex from the mapped previous
optimum.  Warm starts change iteration counts, never optima beyond LP
tolerance, so serial and parallel sweeps still agree with cold solves to
1e-9 (asserted in ``tests/runtime/test_lp_persistent.py``).

Run ``python -m repro.runtime.sweep --help`` for a CLI demonstration on the
paper's Figure 5 case-study network.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro import obs
from repro.network.model import Network
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.fingerprint import fingerprint_sweep
from repro.runtime.registry import SolveResult, SolverRegistry

__all__ = ["SweepRunner", "SweepSpec", "derive_seed"]


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-mixed per-point seed from ``(base_seed, index)``."""
    seq = np.random.SeedSequence([int(base_seed), int(index)])
    return int(seq.generate_state(1, dtype=np.uint64)[0] >> 1)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative, scenario-aware sweep: *what* to solve, not *how*.

    Names a registered scenario (see :mod:`repro.scenarios`) plus the
    population sweep, solver method, and options — everything needed to
    reproduce a figure's computation from a YAML-able document.  The spec
    is content-addressed: :meth:`fingerprint` hashes the *compiled* models,
    so two specs that build identical networks are identified regardless
    of scenario naming.

    Attributes
    ----------
    scenario:
        Name of a scenario in the default scenario registry.
    populations:
        Job populations to sweep, in order.
    method:
        Registered solver method (``lp``, ``exact``, ``mva``, ...).
    params:
        Scenario parameter overrides (validated by the scenario).
    opts:
        Solver options forwarded to every point solve.  Runner-level
        controls (``cache``, ``workers``, ``base_seed``) are rejected
        here — pass them to :meth:`SweepRunner.run_spec` / this class's
        ``base_seed`` field instead.
    base_seed:
        Per-point seed derivation base for stochastic methods.
    """

    #: Option names owned by the runner, not the solver adapters.
    _RESERVED_OPTS = ("cache", "workers", "base_seed")

    scenario: str
    populations: tuple[int, ...]
    method: str = "lp"
    params: Mapping[str, Any] = field(default_factory=dict)
    opts: Mapping[str, Any] = field(default_factory=dict)
    base_seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "populations", tuple(int(n) for n in self.populations))
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "opts", dict(self.opts))
        if not self.populations:
            raise ValueError("SweepSpec needs at least one population")
        clashes = [k for k in self._RESERVED_OPTS if k in self.opts]
        if clashes:
            raise ValueError(
                f"SweepSpec.opts may not contain runner controls {clashes}; "
                "pass cache=/workers= to run_spec() and seeds via base_seed"
            )

    def networks(self) -> list[Network]:
        """Compile the per-point models through the scenario registry.

        Raises
        ------
        UnsupportedNetworkError
            When the scenario compiles to an *open* network: open models
            ignore the population argument, so a population sweep would
            silently produce identical points.
        """
        from repro.scenarios import get_scenario  # lazy: avoids an import cycle

        sc = get_scenario(self.scenario)
        nets = [sc.network(population=n, **self.params) for n in self.populations]
        if nets and nets[0].kind == "open":
            from repro.utils.errors import UnsupportedNetworkError

            raise UnsupportedNetworkError(
                "population sweep", "open", supported="closed/mixed"
            )
        return nets

    def _seeds_points(self) -> bool:
        """Whether the runner would derive per-point rng seeds for this spec.

        Mirrors :meth:`SweepRunner.run`: seeds are derived only for
        stochastic methods, only when ``base_seed`` is set, and only when
        the caller did not pin ``rng`` in ``opts``.  Unknown (custom)
        methods are conservatively treated as stochastic so their seeds
        are never silently dropped from the digest.
        """
        if self.base_seed is None or "rng" in self.opts:
            return False
        try:
            return SolverRegistry(cache=None).is_stochastic(self.method)
        except KeyError:
            return True

    def fingerprint(self) -> str:
        """Content digest of the whole sweep (see :func:`fingerprint_sweep`).

        For stochastic methods the derived per-point ``rng`` seeds enter
        the digest — exactly the options the runner's cache keys use — so
        two specs share a fingerprint iff every point would hit the same
        cache entries.
        """
        nets = self.networks()
        per_point = None
        if self._seeds_points():
            per_point = [
                {**self.opts, "rng": derive_seed(self.base_seed, i)}
                for i in range(len(nets))
            ]
        return fingerprint_sweep(
            nets, self.method, dict(self.opts), per_point_opts=per_point
        )

    def to_dict(self) -> dict:
        """JSON/YAML-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "scenario": self.scenario,
            "populations": list(self.populations),
            "method": self.method,
            "params": dict(self.params),
            "opts": dict(self.opts),
            "base_seed": self.base_seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Build a spec from a parsed JSON/YAML document."""
        return cls(
            scenario=payload["scenario"],
            populations=tuple(payload["populations"]),
            method=payload.get("method", "lp"),
            params=dict(payload.get("params", {})),
            opts=dict(payload.get("opts", {})),
            base_seed=payload.get("base_seed"),
        )


# Per-process registry (workers are forked/spawned without parent state).
_worker_registry: SolverRegistry | None = None
_worker_cache_dir: "str | None" = None


def _get_worker_registry(cache_dir: "str | None") -> SolverRegistry:
    global _worker_registry, _worker_cache_dir
    if _worker_registry is None or _worker_cache_dir != cache_dir:
        cache = ResultCache(directory=cache_dir) if cache_dir else None
        _worker_registry = SolverRegistry(cache=cache)
        _worker_cache_dir = cache_dir
    return _worker_registry


def _solve_point(payload) -> "tuple[SolveResult, dict | None]":
    """Top-level worker entry (must be picklable for ProcessPoolExecutor).

    When the parent sweep is profiling (``collect``), the solve runs under
    a fresh worker-local :class:`~repro.obs.Telemetry` whose exported
    state rides back with the result; the parent absorbs the states in
    input order, so serial and parallel sweeps aggregate identically.
    """
    network, method, opts, cache_dir, collect = payload
    registry = _get_worker_registry(cache_dir)
    if not collect:
        return registry.solve(network, method, **opts), None
    tele = obs.Telemetry()
    with obs.use(tele):
        result = registry.solve(network, method, **opts)
    return result, tele.export_state()


class SweepRunner:
    """Fan independent model solves across processes, results in order.

    Parameters
    ----------
    registry:
        Registry used on the serial path (``workers <= 1``); defaults to a
        fresh registry over ``cache_dir``.
    workers:
        Default worker count; ``None`` picks ``min(n_points, cpu_count)``,
        ``0``/``1`` solve serially in-process.
    cache_dir:
        Disk cache directory shared by all workers; ``None`` disables the
        disk tier (each worker still has its in-memory tier).  When omitted
        it follows the given registry's cache (so serial and parallel paths
        see the same store), falling back to
        :func:`~repro.runtime.cache.default_cache_dir` (resolved at call
        time, honoring ``REPRO_CACHE_DIR``).
    """

    _UNSET = object()

    def __init__(
        self,
        registry: SolverRegistry | None = None,
        workers: int | None = None,
        cache_dir: "str | os.PathLike | None" = _UNSET,
    ) -> None:
        if cache_dir is self._UNSET:
            if registry is not None:
                cache = registry.cache
                cache_dir = (
                    str(cache.directory)
                    if cache is not None and cache.directory is not None
                    else None
                )
            else:
                cache_dir = str(default_cache_dir())
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        if registry is None:
            cache = ResultCache(directory=self.cache_dir) if self.cache_dir else None
            registry = SolverRegistry(cache=cache)
        self.registry = registry
        self.workers = workers
        self.last_wall_time_s: float = 0.0

    # ------------------------------------------------------------------ #
    def run(
        self,
        networks: Sequence[Network],
        method: str = "lp",
        base_seed: int | None = None,
        workers: int | None = None,
        cache: bool = True,
        **opts,
    ) -> list[SolveResult]:
        """Solve every network; returns results in input order.

        ``base_seed`` derives a deterministic per-point ``rng`` seed for
        stochastic methods (ignored for deterministic methods, and when the
        caller passes ``rng`` explicitly); identical on serial and parallel
        paths.
        """
        networks = list(networks)
        seed_points = base_seed is not None and self.registry.is_stochastic(method)
        per_point_opts: list[dict] = []
        for i in range(len(networks)):
            o = dict(opts)
            if seed_points and "rng" not in o:
                o["rng"] = derive_seed(base_seed, i)
            o["cache"] = cache
            per_point_opts.append(o)

        if workers is None:
            workers = self.workers
        if workers is None:
            workers = min(len(networks), os.cpu_count() or 1)

        tele = obs.get_telemetry()
        with tele.span(
            "sweep.run", method=method, n_points=len(networks)
        ) as span:
            t0 = obs.clock()
            if workers <= 1 or len(networks) <= 1:
                span.set("workers", 1)
                results = []
                for net, o in zip(networks, per_point_opts):
                    results.append(self.registry.solve(net, method, **o))
                    tele.gauge("sweep.completed_points", len(results))
            else:
                span.set("workers", int(workers))
                payloads = [
                    (net, method, o, self.cache_dir, tele.enabled)
                    for net, o in zip(networks, per_point_opts)
                ]
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [pool.submit(_solve_point, p) for p in payloads]
                    results = []
                    # Consume futures in input order, absorbing each
                    # worker's telemetry as its point lands: counters merge
                    # additively and per-point spans attach under this sweep
                    # span, so serial and parallel runs aggregate
                    # identically — and a live /metrics scrape
                    # (repro.obs.export) watches the aggregate grow point
                    # by point instead of jumping at the end.
                    for future in futures:
                        result, state = future.result()
                        results.append(result)
                        if state is not None:
                            tele.absorb_state(state, parent=span)
                        tele.gauge("sweep.completed_points", len(results))
            span.count("sweep.points", len(networks))
            self.last_wall_time_s = obs.clock() - t0
        return results

    def population_sweep(
        self,
        base_network: Network,
        populations: Sequence[int],
        method: str = "lp",
        **kwargs,
    ) -> list[SolveResult]:
        """Sweep the job population N, everything else fixed."""
        nets = [base_network.with_population(int(n)) for n in populations]
        return self.run(nets, method, **kwargs)

    def run_spec(
        self,
        spec: SweepSpec,
        workers: int | None = None,
        cache: bool = True,
    ) -> list[SolveResult]:
        """Execute a declarative :class:`SweepSpec`, results in spec order.

        The scenario is resolved through the default scenario registry,
        the per-point models are compiled once, and the solves fan across
        workers exactly like :meth:`run`.
        """
        return self.run(
            spec.networks(),
            spec.method,
            base_seed=spec.base_seed,
            workers=workers,
            cache=cache,
            **dict(spec.opts),
        )


# ---------------------------------------------------------------------- #
# CLI demo: cached, parallel population sweep on the Figure 5 network
# ---------------------------------------------------------------------- #
def main(argv: "list[str] | None" = None) -> None:  # pragma: no cover - CLI
    """CLI demo: cached, parallel population sweep on the Fig. 5 network."""
    import argparse

    from repro.experiments.fig8 import fig5_network
    from repro.utils.tables import format_table

    parser = argparse.ArgumentParser(
        description="Parallel cached population sweep on the paper's "
        "Figure 5 case-study network."
    )
    parser.add_argument(
        "--populations",
        default="2,4,6,8,10,12,14,16",
        help="comma-separated population list (default: 8 points)",
    )
    parser.add_argument("--method", default="lp",
                        help="solver method (lp/exact/sim/mva/aba/bjb/...)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process count (default: one per point, capped)")
    parser.add_argument("--seed", type=int, default=2008,
                        help="base seed for stochastic methods")
    parser.add_argument("--cache-dir", default=str(default_cache_dir()))
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    args = parser.parse_args(argv)

    try:
        populations = [int(tok) for tok in args.populations.split(",") if tok]
    except ValueError:
        parser.error(f"--populations must be comma-separated integers, got "
                     f"{args.populations!r}")
    if not populations:
        parser.error("--populations is empty")
    runner = SweepRunner(
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    net = fig5_network(populations[0])
    results = runner.population_sweep(
        net,
        populations,
        method=args.method,
        base_seed=args.seed,
        workers=args.workers,
        cache=not args.no_cache,
    )
    rows = []
    for N, res in zip(populations, results):
        x = res.system_throughput
        rows.append(
            [
                N,
                res.method,
                x.lower if x else float("nan"),
                x.upper if x else float("nan"),
                res.wall_time_s,
                "hit" if res.from_cache else "miss",
            ]
        )
    print(
        format_table(
            ["N", "method", "X.lo", "X.hi", "solve_s", "cache"],
            rows,
            title=f"Population sweep ({args.method}), "
            f"{runner.last_wall_time_s:.2f}s wall",
        )
    )
    hits = sum(1 for r in results if r.from_cache)
    print(f"cache: {hits}/{len(results)} points served from cache")
    stats = runner.registry.cache_stats()
    if stats and (stats["memory_hits"] or stats["disk_hits"] or stats["misses"]):
        print(f"local-registry stats: {stats}")


if __name__ == "__main__":  # pragma: no cover
    main()

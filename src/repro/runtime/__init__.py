"""repro.runtime — solver registry, result cache, and parallel sweeps.

The runtime layer makes ``solve(model, method)`` a first-class operation:

* :class:`~repro.runtime.registry.SolverRegistry` — one facade over every
  analysis (LP bounds, exact CTMC, simulation, QBD, transient
  uniformization, MVA/ABA/BJB/decomposition), returning a uniform
  :class:`~repro.runtime.registry.SolveResult` (the ``transient`` method
  returns the trajectory-carrying
  :class:`~repro.transient.result.TransientResult` subclass);
* :mod:`~repro.runtime.fingerprint` — content-addressed hashing of model +
  solver options (the cache key);
* :class:`~repro.runtime.cache.ResultCache` — two-tier memory/disk cache
  with hit/miss stats and bounded eviction;
* :class:`~repro.runtime.sweep.SweepRunner` — deterministic parallel
  parameter sweeps over process pools;
* :class:`~repro.runtime.sweep.SweepSpec` — declarative, scenario-aware
  sweep documents (resolved through :mod:`repro.scenarios`), fingerprinted
  by the *compiled* models;
* :class:`~repro.runtime.batch.BatchLPSolver` — one constraint assembly
  shared by all metric min/max pairs of a model.

Quickstart::

    from repro import runtime
    res = runtime.solve(network, method="lp")        # cached LP bounds
    res.utilization_interval(0), res.system_throughput
    exact = runtime.solve(network, method="exact")   # same facade

The module-level :func:`solve` uses a process-wide default registry whose
disk cache lives at ``.repro-cache/`` (override with ``REPRO_CACHE_DIR``
or :func:`configure`).
"""

from __future__ import annotations

from repro.runtime.batch import BatchLPSolver
from repro.runtime.cache import CacheStats, ResultCache, default_cache_dir
from repro.runtime.fingerprint import (
    FingerprintError,
    fingerprint_network,
    fingerprint_solve,
    fingerprint_sweep,
)
from repro.runtime.registry import SolveResult, SolverRegistry
from repro.runtime.sweep import SweepRunner, SweepSpec, derive_seed

__all__ = [
    "BatchLPSolver",
    "CacheStats",
    "FingerprintError",
    "ResultCache",
    "SolveResult",
    "SolverRegistry",
    "SweepRunner",
    "SweepSpec",
    "configure",
    "default_cache_dir",
    "derive_seed",
    "fingerprint_network",
    "fingerprint_solve",
    "fingerprint_sweep",
    "get_registry",
    "solve",
]

_default_registry: SolverRegistry | None = None


def get_registry() -> SolverRegistry:
    """The process-wide default registry (created lazily)."""
    global _default_registry
    if _default_registry is None:
        _default_registry = SolverRegistry(cache=ResultCache())
    return _default_registry


def configure(cache: ResultCache | None) -> SolverRegistry:
    """Replace the default registry's cache (``None`` disables caching)."""
    global _default_registry
    _default_registry = SolverRegistry(cache=cache)
    return _default_registry


def solve(network, method: str = "lp", **opts) -> SolveResult:
    """``get_registry().solve(...)`` — the one-line facade."""
    return get_registry().solve(network, method, **opts)

"""The solver registry: one ``solve(network, method, **opts)`` facade.

Every analysis in the repository — the paper's LP bounds, the exact CTMC,
the simulator, the QBD heavy-traffic approximation, and the classical
baselines (MVA/ABA/BJB/decomposition) — is wrapped as a registered adapter
returning one uniform :class:`SolveResult`.  Point solvers return degenerate
(zero-width) intervals; bounding solvers return certified intervals; both
expose the same accessors, so experiment drivers and sweeps are written once
against the facade.

Results are content-addressed (see :mod:`repro.runtime.fingerprint`) and
transparently cached (see :mod:`repro.runtime.cache`); a cache hit replays
the stored result, including the *original* compute time in
``wall_time_s`` — so timing columns of experiment tables stay meaningful on
cached reruns while ``from_cache`` tells you nothing was recomputed.  Every
registry solve additionally stamps ``extra["cache_hit"]`` (bool) and
``extra["cache_tier"]`` (``"memory" | "disk" | "miss"``) on the returned
result, so a hit is distinguishable from a merely fast solve; these
provenance keys describe the invocation, not the result, and are stripped
from cached payloads.  When telemetry is enabled (:mod:`repro.obs`) each
solve runs under a ``registry.solve`` span carrying the same provenance
plus fingerprint time and hit/miss/store counters.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro import obs
from repro.baselines.aba import aba_bounds
from repro.baselines.bjb import bjb_bounds
from repro.baselines.decomposition import decomposition
from repro.baselines.mva import mva
from repro.core.bounds import Interval
from repro.network.exact import solve_exact
from repro.network.model import Network, require_closed
from repro.network.statespace import StateSpaceCache, expected_state_count
from repro.qbd.mapm1 import MapM1Queue
from repro.qbd.opennet import solve_open_network
from repro.runtime.batch import BatchLPSolver
from repro.runtime.cache import ResultCache
from repro.runtime.fingerprint import FingerprintError, fingerprint_solve
from repro.sim.engine import simulate
from repro.utils.errors import NotSupportedError, UnsupportedNetworkError

__all__ = ["SolveResult", "SolverRegistry"]

#: ``extra`` keys describing *this invocation's* execution rather than the
#: computed result; stripped from cached payloads so a replay is
#: bit-identical to the original solve.  ``cache_hit``/``cache_tier`` are
#: re-stamped on every registry solve; ``backend`` records which engine
#: (dense matrix vs matrix-free operator for the CTMC methods; persistent
#: HiGHS vs stateless scipy for the LP method) computed a result whose
#: *values* are backend-invariant, so the cache must not fork on it.
_PROVENANCE_KEYS = ("cache_hit", "cache_tier", "backend")


def _pt(value: float) -> Interval:
    """Degenerate interval for a point estimate."""
    value = float(value)
    return Interval(lower=value, upper=value)


def _iv_to_json(iv: Interval | None):
    return None if iv is None else [iv.lower, iv.upper]


def _iv_from_json(obj) -> Interval | None:
    return None if obj is None else Interval(lower=obj[0], upper=obj[1])


@dataclass(frozen=True)
class SolveResult:
    """Uniform output of every registered solver.

    Station metrics are tuples indexed like ``network.stations``; entries
    are ``None`` when the invocation did not request/produce that metric
    (e.g. an LP solve restricted to ``metrics=("system_throughput",)``).
    Intervals from bounding methods are certified; point methods return
    zero-width intervals (simulation: the point estimate of the run).
    ``population`` is ``None`` for open networks, which have no fixed job
    count.
    """

    method: str
    station_names: tuple[str, ...]
    population: "int | None"
    utilization: tuple[Interval | None, ...]
    throughput: tuple[Interval | None, ...]
    queue_length: tuple[Interval | None, ...]
    system_throughput: Interval | None
    response_time: Interval | None
    wall_time_s: float = 0.0
    from_cache: bool = False
    fingerprint: str | None = None
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def _station_metric(self, name: str, k: int) -> Interval:
        iv = getattr(self, name)[k]
        if iv is None:
            raise KeyError(
                f"{name}[{k}] was not computed by this {self.method!r} solve "
                f"(request it via the metrics option)"
            )
        return iv

    def utilization_interval(self, k: int) -> Interval:
        """Certified utilization interval of station ``k``."""
        return self._station_metric("utilization", k)

    def throughput_interval(self, k: int) -> Interval:
        """Certified throughput interval of station ``k``."""
        return self._station_metric("throughput", k)

    def queue_length_interval(self, k: int) -> Interval:
        """Certified mean-queue-length interval of station ``k``."""
        return self._station_metric("queue_length", k)

    def utilization_point(self, k: int) -> float:
        """Midpoint of the utilization interval (the value, for point solvers)."""
        return self._station_metric("utilization", k).midpoint

    def throughput_point(self, k: int) -> float:
        """Midpoint of station ``k``'s throughput interval."""
        return self._station_metric("throughput", k).midpoint

    def queue_length_point(self, k: int) -> float:
        """Midpoint of station ``k``'s mean-queue-length interval."""
        return self._station_metric("queue_length", k).midpoint

    def system_throughput_point(self) -> float:
        """Midpoint of the system-throughput interval."""
        if self.system_throughput is None:
            raise KeyError(f"system throughput not computed by {self.method!r}")
        return self.system_throughput.midpoint

    def response_time_point(self) -> float:
        """Midpoint of the response-time interval."""
        if self.response_time is None:
            raise KeyError(f"response time not computed by {self.method!r}")
        return self.response_time.midpoint

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serializable payload (the on-disk cache format)."""
        return {
            "method": self.method,
            "station_names": list(self.station_names),
            "population": self.population,
            "utilization": [_iv_to_json(iv) for iv in self.utilization],
            "throughput": [_iv_to_json(iv) for iv in self.throughput],
            "queue_length": [_iv_to_json(iv) for iv in self.queue_length],
            "system_throughput": _iv_to_json(self.system_throughput),
            "response_time": _iv_to_json(self.response_time),
            "wall_time_s": self.wall_time_s,
            "fingerprint": self.fingerprint,
            # copied so cached payloads never alias a caller-visible dict;
            # per-invocation cache provenance is stripped (re-stamped on
            # every registry solve, so it must not be frozen into the cache)
            "extra": {
                k: v for k, v in self.extra.items() if k not in _PROVENANCE_KEYS
            },
        }

    @classmethod
    def from_dict(cls, payload: dict, from_cache: bool = False) -> "SolveResult":
        """Rebuild a result from its :meth:`to_dict` payload (cache replay)."""
        population = payload["population"]
        return cls(
            method=payload["method"],
            station_names=tuple(payload["station_names"]),
            population=None if population is None else int(population),
            utilization=tuple(_iv_from_json(v) for v in payload["utilization"]),
            throughput=tuple(_iv_from_json(v) for v in payload["throughput"]),
            queue_length=tuple(_iv_from_json(v) for v in payload["queue_length"]),
            system_throughput=_iv_from_json(payload["system_throughput"]),
            response_time=_iv_from_json(payload["response_time"]),
            wall_time_s=float(payload["wall_time_s"]),
            from_cache=from_cache,
            fingerprint=payload.get("fingerprint"),
            extra=dict(payload.get("extra", {})),
        )


def _make_result(
    network: Network,
    method: str,
    utilization,
    throughput,
    queue_length,
    system_throughput,
    response_time,
    extra: dict | None = None,
) -> SolveResult:
    return SolveResult(
        method=method,
        station_names=tuple(st.name for st in network.stations),
        population=None if network.kind == "open" else network.population,
        utilization=tuple(utilization),
        throughput=tuple(throughput),
        queue_length=tuple(queue_length),
        system_throughput=system_throughput,
        response_time=response_time,
        extra=extra or {},
    )


# ---------------------------------------------------------------------- #
# adapters
# ---------------------------------------------------------------------- #
def _solve_lp(
    network: Network,
    metrics="standard",
    reference: int = 0,
    triples: bool | None = None,
    include_redundant: bool = False,
    lp_method: str = "auto",
    backend: str = "auto",
) -> SolveResult:
    """``backend="auto"`` solves on the persistent warm-started HiGHS
    model when a binding is importable, else stateless scipy ``linprog``.

    Both backends answer with the same optima to LP tolerance, so
    ``backend`` is provenance (excluded from the cache fingerprint,
    recorded in ``extra``) exactly like the exact/transient generator
    backend.
    """
    # kind guard lives in BatchLPSolver.__init__ (the only LP entry point)
    solver = BatchLPSolver(
        network,
        triples=triples,
        include_redundant=include_redundant,
        method=lp_method,
        backend=backend,
    )
    bounds = solver.bound_specs(metrics, reference=reference)
    M = network.n_stations
    return _make_result(
        network,
        "lp",
        [bounds.get(f"utilization[{k}]") for k in range(M)],
        [bounds.get(f"throughput[{k}]") for k in range(M)],
        [bounds.get(f"queue_length[{k}]") for k in range(M)],
        bounds.get("system_throughput"),
        bounds.get("response_time"),
        extra={
            "t_build_s": solver.build_time_s,
            "t_solve_s": solver.solve_time_s,
            "n_variables": solver.system.n_variables,
            "n_rows": solver.system.n_rows,
            "n_lp_solves": solver.n_solves,
            "lp_method": solver.method,
            "lp_iterations": solver.n_iterations,
            "lp_fallbacks": solver.n_fallbacks,
            "lp_warm_starts": solver.n_warm_starts,
            "lp_basis_reuse": solver.n_basis_reuse,
            # population sweeps reuse one cached assembly plan per topology
            "assembly_plan_cached": solver.plan_from_cache,
            "certified": True,
            "backend": solver.backend,
        },
    )


#: Process-wide state-space component cache for the exact sweep path: one
#: phase layout (digits + masks) per topology, one composition enumeration
#: per (N, M) — population sweeps stop re-enumerating phase digits.
_statespace_cache = StateSpaceCache()


def _solve_exact(
    network: Network,
    reference: int = 0,
    ctmc_method: str = "auto",
    max_states: int = 2_000_000,
    backend: str = "auto",
) -> SolveResult:
    """``backend="auto"`` goes matrix-free past the ``max_states`` guard.

    The dense path assembles the sparse generator as before; past the
    guard the Kronecker operator solves the same CTMC without building
    ``Q`` instead of raising ``MemoryError``.  Answers are backend-
    invariant, so ``backend`` is excluded from the cache fingerprint and
    recorded only as provenance in ``extra``.
    """
    require_closed(network, "exact")
    expected = expected_state_count(network)
    # Never pin a space the dense guard would refuse into the process-wide
    # cache: operator-scale spaces are built (and released) per solve.
    space = (
        _statespace_cache.space_for(network)
        if expected <= max_states
        else None
    )
    sol = solve_exact(
        network,
        method=ctmc_method,
        max_states=max_states,
        space=space,
        backend=backend,
    )
    if backend == "auto":
        backend = "dense" if expected <= max_states else "operator"
    M = network.n_stations
    x = sol.system_throughput(reference)
    return _make_result(
        network,
        "exact",
        [_pt(sol.utilization(k)) for k in range(M)],
        [_pt(sol.throughput(k)) for k in range(M)],
        [_pt(sol.mean_queue_length(k)) for k in range(M)],
        _pt(x),
        _pt(network.population / x),
        extra={
            "n_states": int(sol.space.size),
            "exact": True,
            "backend": backend,
        },
    )


def _solve_sim(
    network: Network,
    rng=None,
    horizon_events: int = 200_000,
    warmup_events: int = 20_000,
    reference: int = 0,
    taps=None,
    initial_station: int = 0,
) -> SolveResult:
    sim = simulate(
        network,
        horizon_events=horizon_events,
        warmup_events=warmup_events,
        rng=rng,
        taps=taps,
        initial_station=initial_station,
    )
    M = network.n_stations
    x = sim.system_throughput(reference)
    extra = {
        "duration": float(sim.duration),
        "horizon_events": horizon_events,
        "warmup_events": warmup_events,
        "estimate": True,
    }
    if network.kind != "closed":
        extra["sink_departure_rate"] = sim.sink_departures / sim.duration
        extra["external_arrival_rate"] = sim.external_arrivals / sim.duration
        extra["open_response_time"] = sim.open_response_time()
        extra["open_mean_jobs"] = float(sim.mean_queue_length_open.sum())
    return _make_result(
        network,
        "sim",
        [_pt(sim.utilization[k]) for k in range(M)],
        [_pt(sim.throughput[k]) for k in range(M)],
        [_pt(sim.mean_queue_length[k]) for k in range(M)],
        _pt(x),
        _pt(sim.response_time(reference)),
        extra=extra,
    )


def _solve_qbd_open(network: Network, reference: int = 0) -> SolveResult:
    """Open-network branch of the ``qbd`` adapter (station-wise QBDs)."""
    sol = solve_open_network(network)
    util, thr, qlen = [], [], []
    for k, s in enumerate(sol.stations):
        st = network.stations[k]
        util.append(None if st.kind == "delay" else _pt(s.utilization))
        thr.append(_pt(s.arrival_rate))
        qlen.append(_pt(s.mean_queue_length))
    return _make_result(
        network,
        "qbd",
        util,
        thr,
        qlen,
        _pt(sol.system_throughput),
        _pt(sol.mean_response_time),
        extra={
            "approximation": "station-wise QBD decomposition",
            "arrival_models": [s.arrival_model for s in sol.stations],
            "rho_max": float(np.max(network.open_utilizations)),
        },
    )


def _solve_qbd(network: Network, reference: int = 0) -> SolveResult:
    """Matrix-analytic solve, dispatched on the network kind.

    **Open** networks solve by station-wise QBD decomposition
    (:func:`repro.qbd.opennet.solve_open_network`): exact traffic-equation
    throughputs and utilizations; queue lengths from per-station MAP/M/1
    or MAP/MAP/1 models whose arrival processes are the external MAP
    (thinned by the visit ratio where the stream splits).

    **Closed** networks keep the pre-redesign heavy-traffic approximation:
    a two-station network where a MAP station (the "source") feeds an
    exponential single-server queue is approximated by the open MAP/M/1
    queue of the saturated-source regime (exactly the limiting
    construction of the paper's single-queue predecessors), metrics
    clipped to the population where applicable.

    **Mixed** networks are not supported (closed jobs interleave at the
    same servers, which the decomposition cannot see — use ``sim``).
    """
    if network.kind == "open":
        return _solve_qbd_open(network, reference)
    if network.kind == "mixed":
        raise UnsupportedNetworkError("qbd", "mixed", supported="closed/open")
    if network.n_stations != 2:
        raise NotSupportedError(
            "the qbd method approximates 2-station (source -> server) "
            f"networks; got {network.n_stations} stations"
        )
    exp_idx = [k for k, st in enumerate(network.stations)
               if st.kind == "queue" and st.phases == 1]
    if not exp_idx:
        raise NotSupportedError(
            "the qbd method needs an exponential single-server station"
        )
    # If both are exponential, serve the slower one (the bottleneck).
    server = max(exp_idx, key=lambda k: network.stations[k].mean_service_time)
    source = 1 - server
    arrivals = network.stations[source].service
    mu = 1.0 / network.stations[server].mean_service_time
    q = MapM1Queue(arrivals, mu=mu)
    if not q.is_stable:
        raise NotSupportedError(
            f"the qbd approximation requires rho < 1; got rho = "
            f"{q.offered_load:.4f} (the server, not the source, saturates)"
        )
    N = network.population
    lam = arrivals.rate
    q_server = min(float(q.mean_queue_length), float(N))
    q_source = max(float(N) - q_server, 0.0)
    util = [None, None]
    qlen = [None, None]
    util[server] = _pt(min(float(q.utilization), 1.0))
    util[source] = _pt(1.0)  # saturated-source regime
    qlen[server] = _pt(q_server)
    qlen[source] = _pt(q_source)
    thr = [_pt(lam), _pt(lam)]
    return _make_result(
        network,
        "qbd",
        util,
        thr,
        qlen,
        _pt(lam),
        _pt(N / lam),
        extra={
            "approximation": "saturated-source MAP/M/1",
            "rho": float(q.offered_load),
            "server_station": int(server),
        },
    )


def _solve_mva(
    network: Network, reference: int = 0, substitute_maps: bool = True
) -> SolveResult:
    """Exact MVA; MAP stations get the explicit "no-ACF" substitution.

    MVA is only defined for product-form (exponential) networks.  When the
    model has MAP stations and ``substitute_maps`` is true (the default),
    each one is replaced by an exponential station with the same mean —
    exactly the paper's "no-ACF model" methodology of Figure 3, i.e. the
    answer a product-form capacity-planning tool would give.  The
    substituted station indices are recorded in
    ``extra["map_stations_substituted"]`` so the approximation is never
    silent; pass ``substitute_maps=False`` to get the strict behaviour
    (:class:`~repro.utils.errors.ValidationError` on MAP stations).
    """
    require_closed(network, "mva")
    target = network
    substituted: list[int] = []
    if substitute_maps:
        from repro.maps.builders import exponential
        from repro.network.stations import Station

        for k, st in enumerate(network.stations):
            if st.phases > 1:
                target = target.with_station(
                    k,
                    Station(
                        name=st.name,
                        service=exponential(1.0 / st.mean_service_time),
                        kind=st.kind,
                        servers=st.servers,
                    ),
                )
                substituted.append(k)
    res = mva(target)
    x_ref = float(res.throughput[reference])
    return _make_result(
        network,
        "mva",
        [_pt(u) if math.isfinite(u) else None for u in res.utilization],
        [_pt(t) for t in res.throughput],
        [_pt(qv) for qv in res.queue_length],
        _pt(x_ref),
        _pt(network.population / x_ref),
        extra={
            "product_form": not substituted,
            "map_stations_substituted": substituted,
        },
    )


def _solve_aba(network: Network, reference: int = 0) -> SolveResult:
    require_closed(network, "aba")
    from repro.analysis.asymptotic import asymptotic_limits

    b = aba_bounds(network)
    M = network.n_stations
    N = network.population
    demands = network.service_demands
    util = []
    for k in range(M):
        if network.stations[k].kind == "delay":
            util.append(None)
        else:
            lo, hi = b.utilization_bounds(float(demands[k]))
            util.append(Interval(lower=lo, upper=hi))
    x = Interval(lower=b.throughput_lower, upper=b.throughput_upper)
    v = network.visit_ratios
    thr = [Interval(lower=x.lower * v[k], upper=x.upper * v[k]) for k in range(M)]
    qlen = [Interval(lower=0.0, upper=float(N))] * M
    return _make_result(
        network,
        "aba",
        util,
        thr,
        qlen,
        x,
        Interval(lower=N / x.upper, upper=N / x.lower),
        extra={
            "certified": True,
            "first_moment_only": True,
            # The N -> inf operating point the upper bound pins to — also
            # the fluid tier's saturated fixed point (repro.fluid).
            "asymptotic": asymptotic_limits(network).to_dict(),
        },
    )


def _solve_bjb(network: Network, reference: int = 0) -> SolveResult:
    require_closed(network, "bjb")
    b = bjb_bounds(network)
    M = network.n_stations
    N = network.population
    demands = network.service_demands
    x = Interval(lower=b.throughput_lower, upper=b.throughput_upper)
    v = network.visit_ratios
    util = [
        Interval(
            lower=min(1.0, x.lower * float(demands[k])),
            upper=min(1.0, x.upper * float(demands[k])),
        )
        for k in range(M)
    ]
    thr = [Interval(lower=x.lower * v[k], upper=x.upper * v[k]) for k in range(M)]
    qlen = [Interval(lower=0.0, upper=float(N))] * M
    return _make_result(
        network,
        "bjb",
        util,
        thr,
        qlen,
        x,
        Interval(lower=b.response_lower, upper=b.response_upper),
        extra={"certified": True, "first_moment_only": True},
    )


def _solve_decomposition(network: Network, reference: int = 0) -> SolveResult:
    require_closed(network, "decomposition")
    res = decomposition(network)
    M = network.n_stations
    x = float(res.system_throughput)
    return _make_result(
        network,
        "decomposition",
        [_pt(u) if math.isfinite(u) else None for u in res.utilization],
        [_pt(t) for t in res.throughput],
        [_pt(qv) for qv in res.queue_length],
        _pt(x),
        _pt(network.population / x),
        extra={"approximation": "Courtois decomposition-aggregation"},
    )


def _normalized_opts(adapter: Callable, opts: dict) -> dict:
    """Fill in the adapter's keyword defaults before fingerprinting.

    Makes ``solve(net, "exact")`` and ``solve(net, "exact", reference=0)``
    hash to the same cache key — without this, spelled-out defaults would
    silently duplicate cache entries across drivers.
    """
    try:
        bound = inspect.signature(adapter).bind_partial(**opts)
    except TypeError as exc:
        # Unknown keyword: let the adapter raise its own error on the
        # compute path rather than failing here with a confusing message.
        raise FingerprintError(str(exc)) from exc
    bound.apply_defaults()
    return dict(bound.arguments)


# ---------------------------------------------------------------------- #
# the registry
# ---------------------------------------------------------------------- #
class SolverRegistry:
    """Dispatch ``solve(network, method, **opts)`` with transparent caching.

    Parameters
    ----------
    cache:
        A :class:`~repro.runtime.cache.ResultCache`, or ``None`` to disable
        caching entirely.  The default builds a two-tier cache rooted at
        ``.repro-cache/`` (``REPRO_CACHE_DIR`` overrides).
    """

    def __init__(self, cache: ResultCache | None = None) -> None:
        self.cache = cache
        self._adapters: dict[
            str, tuple[Callable, bool, tuple[str, ...], type, tuple[str, ...]]
        ] = {}
        for name, fn, stochastic in (
            ("lp", _solve_lp, False),
            ("exact", _solve_exact, False),
            ("sim", _solve_sim, True),
            ("qbd", _solve_qbd, False),
            ("mva", _solve_mva, False),
            ("aba", _solve_aba, False),
            ("bjb", _solve_bjb, False),
            ("decomposition", _solve_decomposition, False),
        ):
            self.register(
                name,
                fn,
                stochastic=stochastic,
                # live taps record event epochs as a side effect; a cached
                # replay could not re-record them, so such calls always run
                uncacheable_opts=("taps",) if name == "sim" else (),
                # backend changes how, never what: dense and operator
                # generator solves — and persistent-HiGHS vs stateless
                # scipy LP solves — must share one cache entry
                fingerprint_invariant_opts=(
                    ("backend",) if name in ("exact", "lp") else ()
                ),
            )
        # Imported here, not at module top: TransientResult subclasses
        # SolveResult, so repro.transient can only load once this module
        # has finished initializing.
        from repro.transient.result import TransientResult
        from repro.transient.solver import solve_transient

        self.register(
            "transient",
            solve_transient,
            result_cls=TransientResult,
            fingerprint_invariant_opts=("backend",),
        )
        # Same lazy-import layering: FluidResult extends TransientResult.
        from repro.fluid.result import FluidResult
        from repro.fluid.solver import solve_fluid

        self.register("fluid", solve_fluid, result_cls=FluidResult)

    def register(
        self,
        name: str,
        adapter: Callable,
        stochastic: bool = False,
        uncacheable_opts: tuple[str, ...] = (),
        result_cls: type = SolveResult,
        fingerprint_invariant_opts: tuple[str, ...] = (),
    ) -> None:
        """Add (or replace) a solver adapter.

        ``stochastic`` adapters are only cached when called with an integer
        ``rng`` seed — an unseeded run must stay a fresh random draw.
        ``uncacheable_opts`` names side-effecting options (e.g. the
        simulator's ``taps``) that force a fresh computation when set.
        ``result_cls`` is the :class:`SolveResult` (sub)class cache hits
        are replayed through — adapters returning enriched results (e.g.
        the transient solver's trajectory-carrying
        :class:`~repro.transient.result.TransientResult`) register theirs
        so a replay reconstructs the same type.
        ``fingerprint_invariant_opts`` names options that change *how* a
        result is computed but never its value (e.g. the exact/transient
        ``backend``); they are stripped before fingerprinting so all
        spellings share one cache entry.
        """
        self._adapters[name] = (
            adapter,
            stochastic,
            tuple(uncacheable_opts),
            result_cls,
            tuple(fingerprint_invariant_opts),
        )

    @property
    def methods(self) -> tuple[str, ...]:
        """Registered method names."""
        return tuple(self._adapters)

    def is_stochastic(self, method: str) -> bool:
        """True when the method consumes an ``rng`` seed (e.g. simulation)."""
        if method not in self._adapters:
            raise KeyError(
                f"unknown solve method {method!r}; registered: "
                f"{', '.join(self.methods)}"
            )
        return self._adapters[method][1]

    def solve(
        self,
        network: Network,
        method: str = "lp",
        cache: bool = True,
        **opts,
    ) -> SolveResult:
        """Solve ``network`` with the named method, serving from cache if hit.

        Every returned result carries ``extra["cache_hit"]`` and
        ``extra["cache_tier"]`` (``"memory"``/``"disk"``/``"miss"``); on a
        hit ``wall_time_s`` replays the *original* compute time, so
        provenance — not timing — is how a replay is distinguished from a
        fast solve.
        """
        try:
            adapter, stochastic, uncacheable, result_cls, fp_invariant = (
                self._adapters[method]
            )
        except KeyError:
            raise KeyError(
                f"unknown solve method {method!r}; registered: "
                f"{', '.join(self.methods)}"
            ) from None

        tele = obs.get_telemetry()
        with tele.span("registry.solve", method=method) as span:
            use_cache = cache and self.cache is not None
            if stochastic and not isinstance(opts.get("rng"), (int, np.integer)):
                use_cache = False  # unseeded runs must stay random
            if any(opts.get(name) is not None for name in uncacheable):
                use_cache = False  # side-effecting option (e.g. live taps)
            key = None
            if use_cache:
                t_fp = obs.clock()
                try:
                    normalized = _normalized_opts(adapter, opts)
                    for name in fp_invariant:
                        normalized.pop(name, None)
                    key = fingerprint_solve(network, method, normalized)
                except FingerprintError:
                    use_cache = False  # non-serializable opts (taps, generators)
                span.set("t_fingerprint_s", obs.clock() - t_fp)
            tier = "miss"
            if use_cache and key is not None:
                payload, tier = self.cache.lookup(key)
                if payload is not None:
                    span.set("cache_hit", True)
                    span.set("cache_tier", tier)
                    span.count("registry.cache_hit")
                    result = result_cls.from_dict(payload, from_cache=True)
                    result.extra["cache_hit"] = True
                    result.extra["cache_tier"] = tier
                    return result

            span.set("cache_hit", False)
            span.set("cache_tier", "miss")
            span.count("registry.cache_miss")
            t0 = obs.clock()
            result = adapter(network, **opts)
            result = replace(
                result, wall_time_s=obs.clock() - t0, fingerprint=key
            )
            if use_cache and key is not None:
                self.cache.put(key, result.to_dict())
                span.count("registry.cache_store")
            result.extra["cache_hit"] = False
            result.extra["cache_tier"] = "miss"
            return result

    def cache_stats(self) -> dict:
        """Hit/miss counters of the attached cache (empty dict if none)."""
        return self.cache.stats.as_dict() if self.cache is not None else {}

"""Batched LP bound solving: assemble the constraint system once, reuse it.

:func:`repro.core.lp.optimize_metric` is a one-shot API — every call pays
for the dense objective vector, the stacked variable-bound array, and method
selection.  :class:`BatchLPSolver` amortizes everything that does not depend
on the objective across all min/max pairs of a model: the variable index,
the assembled sparse constraint matrices, the ``(n, 2)`` bound array, and
the HiGHS method choice.  Dense metric coefficient vectors are built once
per canonical metric spec and reused across min/max senses (and across
repeated :meth:`BatchLPSolver.bound_specs` calls), so a full
standard-metric sweep performs exactly one constraint assembly and
``2 * n_metrics`` solver calls with no redundant re-densification.

Constraint assembly routes through the vectorized block kernel and its
per-topology :class:`~repro.core.assembly.AssemblyCache` (the process-wide
default unless one is injected), so a population sweep over a fixed
topology computes the phase/routing block patterns exactly once and only
re-materializes the N-dependent slices at each point.

Solves route through the persistent HiGHS backend
(:mod:`repro.core.lpbackend`) whenever a binding is importable
(``backend="auto"``; ``"scipy"`` forces the stateless fallback): the model
is passed to the solver once, objectives swap only the cost vector, the
max of each min/max pair restarts primal simplex from the min's optimal
basis, and — in the simplex regime — solves warm-start from the mapped
basis of the same metric at the previous sweep population via the
process-wide lineage store.  Telemetry counters ``lp.model_rebuild``,
``lp.basis_reuse`` and ``lp.warm_start`` make each reuse visible.

Metric requests use compact string specs::

    "utilization[2]"       bound U of station 2
    "throughput"           bound X of every station
    "queue_length[0]"      bound E[n_0]
    "system_throughput"    bound the reference-station throughput
    "response_time"        derived from system throughput via Little's law
    "standard"             everything above, every station
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.assembly import AssemblyCache, get_assembly_cache
from repro.core.bounds import BoundsResult, Interval
from repro.core.lp import solve_lp_core
from repro.core.lpbackend import (
    PersistentLP,
    choose_lp_method,
    get_lp_lineage_store,
    map_basis_snapshot,
    model_shape,
    resolve_backend,
)
from repro.core.objectives import (
    LinearMetric,
    queue_length_metric,
    system_throughput_metric,
    throughput_metric,
    utilization_metric,
)
from repro.core.variables import VariableIndex
from repro.network.model import Network, require_closed
from repro.utils.errors import SolverError

__all__ = ["BatchLPSolver", "expand_metric_specs"]

_STATION_METRICS = ("utilization", "throughput", "queue_length")
_SCALAR_METRICS = ("system_throughput", "response_time")


def expand_metric_specs(specs, n_stations: int) -> list[str]:
    """Normalize metric specs to canonical per-station form, order-stable.

    ``"standard"`` (or the default) expands to the full metric set;
    bare station-metric names expand to one spec per station; duplicates
    collapse to the first occurrence.
    """
    if isinstance(specs, str):
        specs = (specs,)
    out: list[str] = []

    def _add(spec: str) -> None:
        if spec not in out:
            out.append(spec)

    for spec in specs:
        if spec == "standard":
            for name in _STATION_METRICS:
                for k in range(n_stations):
                    _add(f"{name}[{k}]")
            _add("system_throughput")
            _add("response_time")
        elif spec in _STATION_METRICS:
            for k in range(n_stations):
                _add(f"{spec}[{k}]")
        elif spec in _SCALAR_METRICS:
            _add(spec)
        else:
            name, _, rest = spec.partition("[")
            if name not in _STATION_METRICS or not rest.endswith("]"):
                raise ValueError(f"unknown metric spec {spec!r}")
            k = int(rest[:-1])
            if not 0 <= k < n_stations:
                raise ValueError(
                    f"metric spec {spec!r}: station index out of range "
                    f"(network has {n_stations} stations)"
                )
            _add(spec)
    if "response_time" in out:
        _add("system_throughput")  # Little's law needs the X interval
    return out


class BatchLPSolver:
    """One model, one constraint assembly, many metric bounds."""

    def __init__(
        self,
        network: Network,
        triples: bool | None = None,
        include_redundant: bool = False,
        method: str = "auto",
        backend: str = "auto",
        warm_start: bool = True,
        assembly_cache: AssemblyCache | None = None,
    ) -> None:
        require_closed(network, "lp")
        self.network = network
        cache = assembly_cache if assembly_cache is not None else get_assembly_cache()
        with obs.get_telemetry().span("lp.assembly") as span:
            t0 = obs.clock()
            plan_misses = cache.misses
            plan = cache.plan_for(
                network, triples=triples, include_redundant=include_redundant
            )
            self.plan_from_cache = cache.misses == plan_misses
            self.vi = VariableIndex(network, triples=plan.triples)
            self.system = plan.assemble(network, vi=self.vi)
            self._bounds_array = np.column_stack([self.system.lb, self.system.ub])
            self.build_time_s = obs.clock() - t0
            span.set("plan_from_cache", self.plan_from_cache)
            span.set("n_variables", int(self.system.n_variables))
        #: "highs" (persistent warm-started model) or "scipy" (stateless).
        self.backend = resolve_backend(backend)
        self._method_requested = method
        #: resolved *cold* method (reporting; warm solves may use simplex)
        self.method = (
            choose_lp_method(self.system.n_variables)
            if method == "auto"
            else method
        )
        self._plp: PersistentLP | None = None
        if self.backend == "highs":
            self._plp = PersistentLP(self.system, method=method)
        # Population-lineage warm starts only pay (and only fire) in the
        # simplex regime; the shape snapshot materializes row labels, so
        # skip it entirely for the big interior-point instances.
        self._lineage = (
            get_lp_lineage_store()
            if (
                warm_start
                and self._plp is not None
                and self.method == "highs"
            )
            else None
        )
        self._topology_key = plan.key
        self._shape = (
            model_shape(self.system) if self._lineage is not None else None
        )
        self._last_metric: str | None = None
        self.n_solves = 0
        self.n_fallbacks = 0  # solves completed by a different HiGHS algorithm
        self.n_warm_starts = 0  # solves started from a mapped lineage basis
        self.n_basis_reuse = 0  # min/max pair solves off the kept basis
        self.n_iterations = 0  # simplex + ipm + crossover, all solves
        self.solve_time_s = 0.0
        #: canonical metric spec -> (metric, dense coefficient vector)
        self._dense_cache: dict[str, tuple[LinearMetric, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    def optimize(self, metric: LinearMetric, sense: str) -> float:
        """Optimal value of one metric in one direction."""
        c = metric.dense(self.system.n_variables)
        return self._optimize_dense(c, sense, metric.name) + metric.constant

    def _optimize_dense(self, c: np.ndarray, sense: str, name: str) -> float:
        if sense not in ("min", "max"):
            raise ValueError(f"sense must be 'min' or 'max', got {sense!r}")
        if self._plp is not None:
            return self._optimize_persistent(c, sense, name)
        sign = 1.0 if sense == "min" else -1.0
        with obs.get_telemetry().span("lp.solve", metric=name, sense=sense) as span:
            t0 = obs.clock()
            # min uses the caller's vector as-is; max negates into a scratch
            # copy so cached coefficient vectors are never mutated.
            res, method_used = solve_lp_core(
                c if sense == "min" else np.negative(c),
                self.system,
                self.method,
                self._bounds_array,
            )
            self.solve_time_s += obs.clock() - t0
            self.n_solves += 1
            self.n_iterations += int(getattr(res, "nit", 0) or 0)
            span.count("lp.solves")
            span.count("lp.iterations", int(getattr(res, "nit", 0) or 0))
            if method_used != self.method:
                self.n_fallbacks += 1
                span.count("lp.fallbacks")
                span.set("method_used", method_used)
        if not res.success:
            raise SolverError(
                f"LP {sense} of {name} failed: {res.message} (status {res.status})"
            )
        return float(sign * res.fun)

    def _optimize_persistent(self, c: np.ndarray, sense: str, name: str) -> float:
        """One solve on the persistent model: swap the cost vector, pick
        the cheapest valid start (pair basis > mapped lineage basis > cold),
        record the basis for the next population of this lineage."""
        with obs.get_telemetry().span("lp.solve", metric=name, sense=sense) as span:
            t0 = obs.clock()
            # The kept basis is only primal-feasible for the *same* metric
            # (the min/max pair); across metrics it misleads the solver.
            reuse = self._last_metric == name
            warm_basis = None
            if not reuse and self._lineage is not None:
                hit = self._lineage.lookup(self._topology_key, name, sense)
                if hit is not None:
                    # Adjacent population: the mapping reshapes the blocks.
                    # Same population (a fresh solver re-running a lineage):
                    # the mapping is the identity and the warm solve is a
                    # near-free replay of the stored optimal basis.
                    col, row = map_basis_snapshot(
                        hit[0], hit[1], hit[2], self._shape
                    )
                    warm_basis = self._plp.make_basis(col, row)
            info = self._plp.solve(c, sense, warm_basis=warm_basis,
                                   reuse_basis=reuse)
            self._last_metric = name
            if self._lineage is not None:
                snap = self._plp.basis_snapshot()
                if snap is not None:
                    self._lineage.store(
                        self._topology_key, name, sense, self._shape, *snap
                    )
            self.solve_time_s += obs.clock() - t0
            self.n_solves += 1
            self.n_iterations += info.n_iterations
            span.count("lp.solves")
            span.count("lp.iterations", info.n_iterations)
            if info.warm_started:
                if warm_basis is not None:
                    self.n_warm_starts += 1
                    span.count("lp.warm_start")
                else:
                    self.n_basis_reuse += 1
                    span.count("lp.basis_reuse")
            if info.n_fallbacks:
                self.n_fallbacks += 1
                span.count("lp.fallbacks")
                span.set("method_used", info.method_used)
        return float(info.value)

    def bound(self, metric: LinearMetric) -> Interval:
        """[min, max] of one metric — one dense vector, two solves."""
        c = metric.dense(self.system.n_variables)
        return self._bound_dense(metric.name, c, metric.constant)

    def _bound_dense(self, name: str, c: np.ndarray, constant: float) -> Interval:
        lo = self._optimize_dense(c, "min", name) + constant
        hi = self._optimize_dense(c, "max", name) + constant
        if lo > hi:  # round-off on a degenerate (point) interval
            lo, hi = hi, lo
        return Interval(lower=lo, upper=hi)

    # ------------------------------------------------------------------ #
    def _metric_for(self, spec: str, reference: int) -> LinearMetric:
        if spec == "system_throughput":
            return system_throughput_metric(self.network, self.vi, reference)
        name, _, rest = spec.partition("[")
        k = int(rest[:-1])
        builder = {
            "utilization": utilization_metric,
            "throughput": throughput_metric,
            "queue_length": queue_length_metric,
        }[name]
        return builder(self.network, self.vi, k)

    def _dense_for(self, spec: str, reference: int) -> tuple[LinearMetric, np.ndarray]:
        """(metric, dense coefficients) for a spec, densified exactly once."""
        key = f"{spec}@{reference}" if spec == "system_throughput" else spec
        hit = self._dense_cache.get(key)
        if hit is None:
            metric = self._metric_for(spec, reference)
            hit = (metric, metric.dense(self.system.n_variables))
            self._dense_cache[key] = hit
        return hit

    def bound_specs(
        self, specs="standard", reference: int = 0
    ) -> dict[str, Interval]:
        """Bound every requested metric; returns canonical-spec -> Interval."""
        expanded = expand_metric_specs(specs, self.network.n_stations)
        out: dict[str, Interval] = {}
        for spec in expanded:
            if spec == "response_time":
                continue  # derived below
            metric, c = self._dense_for(spec, reference)
            out[spec] = self._bound_dense(metric.name, c, metric.constant)
        if "response_time" in expanded:
            x = out["system_throughput"]
            N = self.network.population
            out["response_time"] = Interval(lower=N / x.upper, upper=N / x.lower)
        return out

    def standard_bounds(self, reference: int = 0) -> BoundsResult:
        """Drop-in equivalent of :func:`repro.core.bounds.solve_bounds`."""
        b = self.bound_specs("standard", reference)
        M = self.network.n_stations
        return BoundsResult(
            network=self.network,
            utilization=[b[f"utilization[{k}]"] for k in range(M)],
            throughput=[b[f"throughput[{k}]"] for k in range(M)],
            queue_length=[b[f"queue_length[{k}]"] for k in range(M)],
            system_throughput=b["system_throughput"],
            response_time=b["response_time"],
        )

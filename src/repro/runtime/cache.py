"""Two-tier (memory + disk) result cache keyed by content fingerprint.

The memory tier is a per-process LRU over deserialized payload dicts; the
disk tier persists JSON files under a cache directory (default
``.repro-cache/``, overridable via ``REPRO_CACHE_DIR``) so repeated
benchmark or experiment invocations across processes are served without
recomputation.  Both tiers are size-bounded: memory by entry count with LRU
eviction, disk by file count with oldest-mtime eviction.

Disk writes go through a temp file + :func:`os.replace` so concurrent sweep
workers sharing one cache directory never observe a torn entry.

Telemetry: when :mod:`repro.obs` is enabled, every lookup/store also bumps
the global ``result_cache.*`` counters (``memory_hit`` / ``disk_hit`` /
``miss`` / ``put`` / ``bytes_written`` / ``memory_eviction`` /
``disk_eviction``); the per-instance :class:`CacheStats` stay authoritative
for a single cache's lifetime stats.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs

__all__ = ["CacheStats", "ResultCache", "default_cache_dir"]


def default_cache_dir() -> Path:
    """The on-disk cache location: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ResultCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    memory_evictions: int = 0
    disk_evictions: int = 0

    @property
    def hits(self) -> int:
        """Total cache hits across both tiers."""
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """Counters as a plain dict (for logging and metadata)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "memory_evictions": self.memory_evictions,
            "disk_evictions": self.disk_evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ResultCache:
    """Fingerprint-keyed store of JSON-serializable payload dicts.

    Parameters
    ----------
    directory:
        Disk-tier location; ``None`` disables the disk tier entirely
        (memory-only cache).
    max_memory_entries:
        LRU capacity of the in-process tier.
    max_disk_entries:
        File-count bound of the disk tier; exceeding it evicts the
        least-recently-modified entries.
    """

    directory: Path | None = field(default_factory=default_cache_dir)
    max_memory_entries: int = 512
    max_disk_entries: int = 4096
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.directory is not None:
            self.directory = Path(self.directory)
        self._memory: OrderedDict[str, dict] = OrderedDict()
        # Approximate disk-entry count, initialized lazily on first write;
        # keeps puts O(1) instead of globbing the directory every time.
        self._disk_count: int | None = None

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Payload for ``key`` or None; disk hits are promoted to memory."""
        return self.lookup(key)[0]

    def lookup(self, key: str) -> "tuple[dict | None, str]":
        """``(payload, tier)`` for ``key``; tier is memory / disk / miss.

        Identical to :meth:`get` but also reports which tier served the
        hit (the registry surfaces this as ``extra["cache_tier"]``).  Disk
        hits are promoted to the memory tier.
        """
        tele = obs.get_telemetry()
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            tele.counter("result_cache.memory_hit")
            return self._memory[key], "memory"
        if self.directory is not None:
            path = self._path(key)
            try:
                with open(path) as fh:
                    payload = json.load(fh)
            except (OSError, json.JSONDecodeError):
                payload = None
            if payload is not None:
                self.stats.disk_hits += 1
                tele.counter("result_cache.disk_hit")
                self._remember(key, payload)
                return payload, "disk"
        self.stats.misses += 1
        tele.counter("result_cache.miss")
        return None, "miss"

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` in both tiers (atomic on disk)."""
        self.stats.puts += 1
        tele = obs.get_telemetry()
        tele.counter("result_cache.put")
        self._remember(key, payload)
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        if self._disk_count is None:
            self._disk_count = sum(1 for _ in self.directory.glob("*.json"))
        target = self._path(key)
        existed = target.exists()
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                body = json.dumps(payload)
                fh.write(body)
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        tele.counter("result_cache.bytes_written", len(body))
        if not existed:
            self._disk_count += 1
        if self._disk_count > self.max_disk_entries:
            self._evict_disk()

    def _remember(self, key: str, payload: dict) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.memory_evictions += 1
            obs.get_telemetry().counter("result_cache.memory_eviction")

    def _evict_disk(self) -> None:
        assert self.directory is not None
        entries = sorted(
            self.directory.glob("*.json"), key=lambda p: p.stat().st_mtime
        )
        self._disk_count = len(entries)
        while len(entries) > self.max_disk_entries:
            victim = entries.pop(0)
            try:
                victim.unlink()
                self.stats.disk_evictions += 1
                self._disk_count -= 1
                obs.get_telemetry().counter("result_cache.disk_eviction")
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.directory is not None and self._path(key).exists()

    def __len__(self) -> int:
        keys = set(self._memory)
        if self.directory is not None and self.directory.is_dir():
            keys.update(p.stem for p in self.directory.glob("*.json"))
        return len(keys)

    def clear(self, disk: bool = True) -> None:
        """Drop the memory tier (and the disk tier unless ``disk=False``)."""
        self._memory.clear()
        if disk and self.directory is not None and self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
            self._disk_count = 0

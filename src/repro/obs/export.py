"""Live metrics exposition: Prometheus text / JSON rendering + HTTP server.

Renders a :class:`~repro.obs.core.TelemetrySnapshot` in the Prometheus
text exposition format (version 0.0.4) and serves it from a stdlib-only
HTTP endpoint (``python -m repro.obs serve --port``).  The endpoint
snapshots the *process-wide* telemetry on every request, so during a
parallel sweep — whose workers ship their metrics back through
``export_state``/``absorb_state`` — scraping ``/metrics`` sees the
aggregated totals grow point by point.  This is the stepping stone to
the ROADMAP item 3 service's ``/metrics``.

Name mapping: metric names are dotted internally (``lp.iterations``,
``span.registry.solve.duration_s``); Prometheus names are the sanitized
form with a ``repro_`` prefix (``repro_lp_iterations_total``).
Counters gain the conventional ``_total`` suffix, gauges are emitted
verbatim, and histogram stats become a Prometheus *summary* (quantile
series plus ``_sum``/``_count``) using the percentiles the snapshot
already computed.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.core import TelemetrySnapshot, get_telemetry

__all__ = [
    "MetricsServer",
    "prometheus_name",
    "render_metrics_json",
    "render_prometheus",
    "start_metrics_server",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_PERCENTILE_KEY_RE = re.compile(r"^p(\d+(?:_\d+)?)$")


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Sanitized, prefixed Prometheus metric name for a dotted name."""
    base = _NAME_RE.sub("_", name.strip())
    return f"{prefix}_{base}" if prefix else base


def _quantile_label(stat_key: str) -> "str | None":
    """``"p95" -> "0.95"``, ``"p99_9" -> "0.999"``; None for non-quantiles."""
    m = _PERCENTILE_KEY_RE.match(stat_key)
    if m is None:
        return None
    q = float(m.group(1).replace("_", "."))
    return f"{q / 100.0:g}"


def render_prometheus(snapshot: TelemetrySnapshot, prefix: str = "repro") -> str:
    """The snapshot in Prometheus text exposition format (0.0.4).

    Counters become ``<prefix>_<name>_total`` counter series, gauges map
    verbatim, and each histogram's precomputed stats are exposed as a
    summary: one ``{quantile="..."}`` sample per snapshot percentile
    plus ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    for name, value in sorted(snapshot.counters.items()):
        metric = prometheus_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {float(value):g}")
    for name, value in sorted(snapshot.gauges.items()):
        metric = prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {float(value):g}")
    for name, stats in sorted(snapshot.histograms.items()):
        metric = prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for key, value in sorted(stats.items()):
            quantile = _quantile_label(key)
            if quantile is not None:
                lines.append(f'{metric}{{quantile="{quantile}"}} {float(value):g}')
        lines.append(f"{metric}_sum {float(stats['sum']):g}")
        lines.append(f"{metric}_count {int(stats['count'])}")
    return "\n".join(lines) + "\n"


def render_metrics_json(snapshot: TelemetrySnapshot) -> str:
    """The snapshot as an indented JSON document (``/metrics.json``)."""
    return json.dumps(snapshot.as_dict(), indent=2, sort_keys=True) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` (Prometheus text) and ``/metrics.json``."""

    server: "MetricsServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Render a fresh snapshot for the requested format."""
        path = self.path.split("?", 1)[0]
        snapshot = self.server.snapshot_fn()
        if path in ("/metrics", "/"):
            body = render_prometheus(snapshot).encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = render_metrics_json(snapshot).encode()
            ctype = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics)")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging (scrapes are frequent)."""


class MetricsServer(ThreadingHTTPServer):
    """Background metrics endpoint over a snapshot provider.

    Each request calls ``snapshot_fn`` (default: the process-wide
    telemetry's :meth:`snapshot`), so the endpoint always reflects the
    current aggregated state without any push plumbing.
    """

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        snapshot_fn=None,
    ) -> None:
        """Bind to ``(host, port)``; ``port=0`` picks a free port."""
        super().__init__((host, port), _MetricsHandler)
        self.snapshot_fn = (
            snapshot_fn
            if snapshot_fn is not None
            else (lambda: get_telemetry().snapshot())
        )
        self._thread: "threading.Thread | None" = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint (append ``/metrics``)."""
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Serve in a daemon thread; returns ``self`` for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-obs-metrics", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the server thread and close the socket."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        """Start on context entry."""
        return self.start()

    def __exit__(self, *exc) -> None:
        """Stop on context exit."""
        self.stop()


def start_metrics_server(
    host: str = "127.0.0.1", port: int = 0, snapshot_fn=None
) -> MetricsServer:
    """Start a background :class:`MetricsServer`; caller owns ``stop()``."""
    return MetricsServer(host=host, port=port, snapshot_fn=snapshot_fn).start()

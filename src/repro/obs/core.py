"""Zero-dependency tracing and metrics core.

Two cooperating primitives:

* :class:`Span` — a timed, named region of work.  Spans form a tree
  through a per-thread context stack: a span opened while another is
  active becomes its child, so ``registry.solve`` naturally contains the
  ``lp.assembly``/``lp.solve``/``transient.grid`` spans its adapter ran.
  Spans carry free-form attributes, additive counters, and (on an
  exception) the error that crossed them.
* :class:`Telemetry` — the process-wide metrics registry: monotonic
  counters, last-value gauges, and value histograms (latency percentiles
  come from these), plus the list of finished span trees.  Every counter
  bumped through :meth:`Span.count` also lands in the global registry, so
  aggregate totals never require walking the span tree.

Instrumentation is **off by default**: the installed telemetry is a
:class:`NullTelemetry` whose ``span()`` returns a shared no-op span and
whose metric methods do nothing — the instrumented hot paths pay one
attribute lookup and one call per probe, nothing else (the tracked
``instrumentation_overhead`` entry of ``BENCH_lp_scaling.json`` gates
this at <= 5% even with telemetry *enabled*).  Enable collection with
:func:`enable` / :func:`use` / :func:`set_telemetry`.

This module imports nothing from the rest of :mod:`repro` (only the
standard library and numpy), so every layer of the solver stack can
instrument itself without creating import cycles.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "FlightRecorder",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "TelemetrySnapshot",
    "clock",
    "disable",
    "disable_flight_recorder",
    "enable",
    "enable_flight_recorder",
    "get_flight_recorder",
    "get_telemetry",
    "register_flight_dump_exceptions",
    "set_telemetry",
    "use",
]

#: Percentiles reported for every histogram in a snapshot / summary.
SNAPSHOT_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


def clock() -> float:
    """Monotonic timestamp in seconds (the repo's one timing source).

    Thin alias for :func:`time.perf_counter`; instrumented code calls
    this instead of importing ``time`` directly so the perf-counter lint
    (``tests/obs/test_perf_counter_lint.py``) can forbid ad-hoc
    stopwatches outside :mod:`repro.obs`.
    """
    return time.perf_counter()


class Span:
    """One timed region of work; a node of the trace tree.

    Use as a context manager obtained from :meth:`Telemetry.span`::

        with tele.span("lp.solve", metric="throughput[0]") as sp:
            ...
            sp.count("lp.iterations", res.nit)

    Attributes are free-form key/value pairs (JSON-scalar values keep the
    trace exportable); counters are additive and also bubble into the
    owning telemetry's global counter registry.  Exceptions crossing the
    span are recorded (``status == "error"``) and re-raised.
    """

    __slots__ = (
        "name",
        "attributes",
        "counters",
        "children",
        "start_s",
        "end_s",
        "status",
        "error",
        "_telemetry",
    )

    def __init__(self, name: str, telemetry: "Telemetry | None" = None, **attributes) -> None:
        self.name = str(name)
        self.attributes: dict = dict(attributes)
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self.start_s: float = clock()
        self.end_s: "float | None" = None
        self.status: str = "ok"
        self.error: "str | None" = None
        self._telemetry = telemetry

    # ------------------------------------------------------------------ #
    @property
    def duration_s(self) -> "float | None":
        """Span duration in seconds, or ``None`` while still open."""
        return None if self.end_s is None else self.end_s - self.start_s

    def elapsed(self) -> float:
        """Seconds since the span started (live, even while open)."""
        return (self.end_s if self.end_s is not None else clock()) - self.start_s

    def set(self, key: str, value) -> None:
        """Set one attribute on the span."""
        self.attributes[str(key)] = value

    def count(self, name: str, n: "int | float" = 1) -> None:
        """Add ``n`` to the span counter ``name`` (and the global counter)."""
        self.counters[name] = self.counters.get(name, 0) + n
        if self._telemetry is not None:
            self._telemetry.counter(name, n)

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = clock()
        if exc_type is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        if self._telemetry is not None:
            self._telemetry._finish_span(self)
            if exc is not None:
                _maybe_attach_flight_dump(self._telemetry, exc)
        return False  # never swallow

    def __repr__(self) -> str:
        dur = self.duration_s
        timing = f"{dur:.6f}s" if dur is not None else "open"
        return f"Span({self.name!r}, {timing}, {len(self.children)} children)"


class _NullSpan:
    """Shared no-op span: the disabled fast path of every probe."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        """No-op."""

    def count(self, name: str, n: "int | float" = 1) -> None:
        """No-op."""

    def elapsed(self) -> float:
        """Always 0.0 (no timing is collected while disabled)."""
        return 0.0


_NULL_SPAN = _NullSpan()


def _flight_jsonable(value):
    """Coerce a span attribute to a JSON-serializable scalar/container."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_flight_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _flight_jsonable(v) for k, v in value.items()}
    try:  # numpy scalars
        return value.item()
    except AttributeError:
        return str(value)


class FlightRecorder:
    """Bounded ring buffer of recently finished spans and counter totals.

    The always-on "black box" of the observability layer: a
    :class:`Telemetry` with a recorder attached feeds every finished span
    into a fixed-capacity :class:`collections.deque` (oldest evicted
    first) and mirrors counter bumps into one flat dict — bounded memory,
    no span-tree retention, no export cost until something goes wrong.
    On error, :meth:`dump` writes the tail as a schema-valid JSONL trace
    that ``python -m repro.obs report`` can render; structured solver
    exceptions crossing a span get the dump attached automatically as
    ``error.trace_path`` (see :func:`register_flight_dump_exceptions`).

    Thread-safe; the ring and counters are guarded by one lock.
    """

    #: Default number of finished spans retained in the ring.
    DEFAULT_CAPACITY = 256

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        directory: "str | os.PathLike | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.directory = Path(
            directory
            if directory is not None
            else os.environ.get("REPRO_FLIGHT_DIR", tempfile.gettempdir())
        )
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=self.capacity)
        self._counters: dict[str, float] = {}
        self._dump_seq = itertools.count(1)

    # ------------------------------------------------------------------ #
    def record_span(self, sp: "Span") -> None:
        """Append one finished span's compact record to the ring."""
        record = {
            "name": sp.name,
            "start_s": sp.start_s,
            "end_s": sp.end_s,
            "duration_s": sp.duration_s,
            "status": sp.status,
            "error": sp.error,
            "attributes": {
                k: _flight_jsonable(v) for k, v in sp.attributes.items()
            },
            "counters": dict(sp.counters),
        }
        with self._lock:
            self._ring.append(record)

    def count(self, name: str, n: "int | float" = 1) -> None:
        """Mirror one counter bump into the recorder's flat totals."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def tail(self) -> "list[dict]":
        """The retained span records, oldest first (a copy)."""
        with self._lock:
            return [dict(r) for r in self._ring]

    def counters(self) -> dict:
        """Copy of the mirrored counter totals."""
        with self._lock:
            return dict(self._counters)

    def clear(self) -> None:
        """Drop everything retained so far."""
        with self._lock:
            self._ring.clear()
            self._counters.clear()

    # ------------------------------------------------------------------ #
    def dump(self, error: "BaseException | None" = None, path=None) -> Path:
        """Write the tail as a JSONL trace file; returns its path.

        The file follows the versioned trace schema (header record, flat
        span records in ring order, one final metrics record carrying the
        mirrored counters), so ``python -m repro.obs report <path>`` and
        ``validate`` read it like any ``--trace-out`` file.  ``error``
        annotates the header with the exception that triggered the dump.
        """
        from repro.obs.trace import TRACE_SCHEMA_VERSION  # lazy: no cycle

        if path is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / (
                f"repro-flight-{os.getpid()}-{next(self._dump_seq)}.jsonl"
            )
        path = Path(path)
        with self._lock:
            spans = [dict(r) for r in self._ring]
            counters = dict(self._counters)
        records: list[dict] = [{
            "type": "header",
            "schema": TRACE_SCHEMA_VERSION,
            "tool": "repro.obs.flight",
            "error": None if error is None else (
                f"{type(error).__name__}: {error}"
            ),
        }]
        for i, rec in enumerate(spans, start=1):
            records.append({
                "type": "span",
                "schema": TRACE_SCHEMA_VERSION,
                "span_id": i,
                "parent_id": None,
                **rec,
            })
        records.append({
            "type": "metrics",
            "schema": TRACE_SCHEMA_VERSION,
            "counters": counters,
            "gauges": {},
            "histograms": {},
        })
        with open(path, "w", encoding="utf-8") as fh:
            for rec in records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return path


#: Exception types that get a flight dump attached as ``.trace_path``
#: when they cross a span while a recorder is active.  Populated by
#: :func:`register_flight_dump_exceptions` (``repro.obs`` registers
#: ``SolverError`` at import, covering the iterative/series subclasses).
_DUMP_EXCEPTION_TYPES: tuple[type, ...] = ()


def register_flight_dump_exceptions(*types: type) -> None:
    """Add exception types eligible for automatic flight-dump attachment."""
    global _DUMP_EXCEPTION_TYPES
    merged = dict.fromkeys(_DUMP_EXCEPTION_TYPES)
    merged.update(dict.fromkeys(types))
    _DUMP_EXCEPTION_TYPES = tuple(merged)


def _maybe_attach_flight_dump(telemetry, exc: BaseException) -> None:
    """Attach a flight dump to ``exc`` once, if a recorder is watching.

    Called from :meth:`Span.__exit__` on the innermost span the exception
    crosses — the dump tail is therefore captured closest to the failure;
    outer spans see ``trace_path`` already set and do nothing.
    """
    recorder = getattr(telemetry, "recorder", None)
    if recorder is None or not _DUMP_EXCEPTION_TYPES:
        return
    if not isinstance(exc, _DUMP_EXCEPTION_TYPES):
        return
    if getattr(exc, "trace_path", None) is not None:
        return
    try:
        exc.trace_path = str(recorder.dump(error=exc))
    except (OSError, AttributeError, TypeError):
        pass  # unwritable dir / slotted or frozen exception: never mask exc


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Point-in-time copy of a telemetry's metric registries.

    ``histograms`` maps each histogram name to a stats dict with
    ``count``/``sum``/``min``/``max``/``mean`` plus one ``p<q>`` entry per
    :data:`SNAPSHOT_PERCENTILES` quantile — span latency percentiles come
    from the automatic ``span.<name>.duration_s`` histograms.
    """

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict form (JSON-serializable)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def to_json(self) -> str:
        """The snapshot as an indented JSON document."""
        import json

        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def _histogram_stats(values: "list[float]") -> dict:
    """Summary statistics of one histogram's raw values."""
    arr = np.asarray(values, dtype=float)
    stats = {
        "count": int(arr.size),
        "sum": float(arr.sum()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }
    for q in SNAPSHOT_PERCENTILES:
        key = f"p{q:g}".replace(".", "_")
        stats[key] = float(np.percentile(arr, q))
    return stats


class Telemetry:
    """Process-wide registry of counters, gauges, histograms, and spans.

    Thread-safe: metric registries are guarded by a lock and the span
    context stack is per-thread, so concurrent sweep threads each grow
    their own span trees while sharing one set of aggregate counters.

    Parameters
    ----------
    recorder:
        Optional :class:`FlightRecorder`; every finished span and counter
        bump is mirrored into its bounded ring, and structured solver
        exceptions crossing a span get a dump attached as ``trace_path``.
    retain_spans:
        ``False`` drops finished span trees instead of keeping them in
        ``roots`` — the always-on flight-recorder mode, where the ring is
        the only span retention and memory stays bounded indefinitely.
    histogram_limit:
        Cap on retained values per histogram (oldest evicted).  ``None``
        (the default) keeps everything, as profiling sessions expect;
        flight-recorder mode sets a bound so gauges/percentiles stay
        available without unbounded growth.
    """

    def __init__(
        self,
        recorder: "FlightRecorder | None" = None,
        retain_spans: bool = True,
        histogram_limit: "int | None" = None,
    ) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histogram_values: dict = {}
        self.recorder = recorder
        self.retain_spans = bool(retain_spans)
        self.histogram_limit = histogram_limit
        #: Finished (and still-open) root spans, in start order (left
        #: empty when ``retain_spans`` is off).
        self.roots: list[Span] = []

    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        """True — this telemetry records everything it is handed."""
        return True

    def _stack(self) -> "list[Span]":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes) -> Span:
        """Open a span as a child of the thread's current span (or a root)."""
        sp = Span(name, telemetry=self, **attributes)
        stack = self._stack()
        if stack:
            stack[-1].children.append(sp)
        elif self.retain_spans:
            with self._lock:
                self.roots.append(sp)
        stack.append(sp)
        return sp

    def current_span(self) -> "Span | None":
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _finish_span(self, sp: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is sp:
            stack.pop()
        elif sp in stack:  # exited out of order (shouldn't happen) — heal
            stack.remove(sp)
        self.observe(f"span.{sp.name}.duration_s", float(sp.duration_s or 0.0))
        if self.recorder is not None:
            self.recorder.record_span(sp)

    # ------------------------------------------------------------------ #
    def counter(self, name: str, n: "int | float" = 1) -> None:
        """Add ``n`` to the monotonic counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
        if self.recorder is not None:
            self.recorder.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        """Set the last-value gauge ``name``."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        with self._lock:
            values = self._histogram_values.get(name)
            if values is None:
                values = self._histogram_values[name] = (
                    []
                    if self.histogram_limit is None
                    else deque(maxlen=int(self.histogram_limit))
                )
            values.append(float(value))

    # ------------------------------------------------------------------ #
    def snapshot(self) -> TelemetrySnapshot:
        """Consistent copy of every metric registry, histograms summarized."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            values = {k: list(v) for k, v in self._histogram_values.items()}
        return TelemetrySnapshot(
            counters=counters,
            gauges=gauges,
            histograms={k: _histogram_stats(v) for k, v in values.items() if v},
        )

    def reset(self) -> None:
        """Drop every metric and span collected so far."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histogram_values.clear()
            self.roots.clear()

    # ------------------------------------------------------------------ #
    # cross-process merge (the parallel-sweep path)
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """Picklable snapshot of everything this telemetry collected.

        Sweep workers ship this back to the parent, which merges it with
        :meth:`absorb_state`; counters/histograms merge additively, so
        serial and parallel sweeps aggregate to identical totals for
        deterministic work counters.
        """
        from repro.obs.trace import span_records

        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histogram_values": {
                    k: list(v) for k, v in self._histogram_values.items()
                },
                "spans": span_records(self.roots),
            }

    def absorb_state(self, state: dict, parent: "Span | None" = None) -> None:
        """Merge a worker's :meth:`export_state` payload into this registry.

        Counters add, histogram values extend, gauges overwrite in absorb
        order (callers absorb in input order so the merge is
        deterministic).  Span trees are rebuilt and attached under
        ``parent`` (or appended as new roots).  Worker span timestamps
        keep their own process clock origin: durations are meaningful
        across processes, absolute starts are not.
        """
        from repro.obs.trace import spans_from_records

        with self._lock:
            for name, n in state.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + n
            for name, v in state.get("gauges", {}).items():
                self._gauges[name] = v
            for name, vals in state.get("histogram_values", {}).items():
                self._histogram_values.setdefault(name, []).extend(vals)
        rebuilt = spans_from_records(state.get("spans", []))
        for sp in rebuilt:
            sp._telemetry = self
        if parent is not None:
            parent.children.extend(rebuilt)
        else:
            with self._lock:
                self.roots.extend(rebuilt)

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """ASCII span-tree / latency-percentile report (see ``report``)."""
        from repro.obs.report import render_summary

        return render_summary(self.roots, self.snapshot())


class NullTelemetry:
    """Disabled telemetry: every probe is a no-op, every span the null span.

    This is the installed default; the instrumented hot paths cost one
    method call per probe and allocate nothing.  Safe under arbitrary
    concurrency (there is no state to race on).
    """

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        """False — nothing is recorded."""
        return False

    def span(self, name: str, **attributes) -> _NullSpan:
        """The shared no-op span."""
        return _NULL_SPAN

    def current_span(self) -> None:
        """Always ``None``."""
        return None

    def counter(self, name: str, n: "int | float" = 1) -> None:
        """No-op."""

    def gauge(self, name: str, value: float) -> None:
        """No-op."""

    def observe(self, name: str, value: float) -> None:
        """No-op."""

    def snapshot(self) -> TelemetrySnapshot:
        """An empty snapshot."""
        return TelemetrySnapshot()

    def reset(self) -> None:
        """No-op."""

    def summary(self) -> str:
        """A one-line reminder that collection is disabled."""
        return "telemetry disabled (enable with repro.obs.enable())"


_NULL = NullTelemetry()
_state = threading.local()
_process_default: "Telemetry | NullTelemetry" = _NULL


def get_telemetry() -> "Telemetry | NullTelemetry":
    """The telemetry active for the calling thread (process default else).

    Defaults to the shared :class:`NullTelemetry`, so importing any
    instrumented module never starts collecting.
    """
    active = getattr(_state, "active", None)
    return active if active is not None else _process_default


def set_telemetry(
    telemetry: "Telemetry | NullTelemetry | None",
) -> "Telemetry | NullTelemetry":
    """Install ``telemetry`` process-wide; returns the previous one.

    ``None`` restores the disabled default.  Thread-local overrides made
    with :func:`use` are unaffected.
    """
    global _process_default
    previous = _process_default
    _process_default = telemetry if telemetry is not None else _NULL
    return previous


def enable(telemetry: "Telemetry | None" = None) -> Telemetry:
    """Install (and return) an enabled :class:`Telemetry` process-wide."""
    tele = telemetry if telemetry is not None else Telemetry()
    set_telemetry(tele)
    return tele


def disable() -> None:
    """Restore the disabled default (a shared :class:`NullTelemetry`)."""
    set_telemetry(None)


_flight_recorder: "FlightRecorder | None" = None


def get_flight_recorder() -> "FlightRecorder | None":
    """The process-wide flight recorder, or ``None`` when not enabled."""
    return _flight_recorder


def enable_flight_recorder(
    capacity: int = FlightRecorder.DEFAULT_CAPACITY,
    directory: "str | os.PathLike | None" = None,
) -> FlightRecorder:
    """Turn on the always-on flight recorder; returns it (idempotent).

    If full telemetry is already enabled, the recorder attaches to it
    (profiling sessions get dump-on-error for free).  Otherwise a
    span-dropping, histogram-bounded :class:`Telemetry` is installed
    process-wide whose only retention is the recorder's ring — the
    "always-on" mode cheap enough to leave running in production (gated
    with the instrumentation overhead in ``BENCH_lp_scaling.json``).
    """
    global _flight_recorder
    if _flight_recorder is None:
        _flight_recorder = FlightRecorder(capacity=capacity, directory=directory)
    tele = get_telemetry()
    if tele.enabled:
        tele.recorder = _flight_recorder
    else:
        set_telemetry(Telemetry(
            recorder=_flight_recorder,
            retain_spans=False,
            histogram_limit=4 * _flight_recorder.capacity,
        ))
    return _flight_recorder


def disable_flight_recorder() -> None:
    """Detach and drop the process-wide flight recorder.

    If the installed telemetry existed only to feed the recorder (the
    span-dropping mode :func:`enable_flight_recorder` installs), the
    disabled default is restored too; a full profiling telemetry merely
    loses its recorder and keeps collecting.
    """
    global _flight_recorder
    tele = get_telemetry()
    if _flight_recorder is not None and (
        getattr(tele, "recorder", None) is _flight_recorder
    ):
        tele.recorder = None
        if isinstance(tele, Telemetry) and not tele.retain_spans:
            disable()
    _flight_recorder = None


class use:
    """Context manager installing a telemetry for the calling thread only.

    ``with obs.use(tele): ...`` scopes collection to the block — sweep
    workers use this so a profiled solve never leaks an enabled telemetry
    into later, unprofiled work on the same process.
    """

    def __init__(self, telemetry: "Telemetry | NullTelemetry") -> None:
        self._telemetry = telemetry
        self._previous: "Telemetry | NullTelemetry | None" = None

    def __enter__(self) -> "Telemetry | NullTelemetry":
        self._previous = getattr(_state, "active", None)
        _state.active = self._telemetry
        return self._telemetry

    def __exit__(self, exc_type, exc, tb) -> bool:
        _state.active = self._previous
        return False

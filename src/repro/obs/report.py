"""ASCII span-tree and latency-percentile reports.

The profiling view printed by ``--profile`` and ``python -m repro.obs
report``: an indented span tree with durations and hot counters, followed
by per-span-name latency percentiles and the global counter table.
"""

from __future__ import annotations

from repro.obs.core import Span, TelemetrySnapshot

__all__ = ["render_summary"]

#: Span counters shown inline in the tree (everything appears in the
#: metrics tables regardless).
_TREE_COUNTER_LIMIT = 4


def _fmt_duration(seconds: "float | None") -> str:
    """Human-scaled duration: us / ms / s."""
    if seconds is None:
        return "open"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def _fmt_count(n: float) -> str:
    """Counters print as ints when integral."""
    return str(int(n)) if float(n).is_integer() else f"{n:.4g}"


def _span_line(sp: Span, depth: int) -> str:
    parts = [f"{'  ' * depth}{sp.name}  {_fmt_duration(sp.duration_s)}"]
    if sp.status != "ok":
        parts.append(f"[{sp.status}: {sp.error}]")
    inline = list(sp.counters.items())[:_TREE_COUNTER_LIMIT]
    if inline:
        parts.append("(" + ", ".join(f"{k}={_fmt_count(v)}" for k, v in inline) + ")")
    return "  ".join(parts)


def render_summary(roots: "list[Span]", snapshot: TelemetrySnapshot) -> str:
    """Render the full ASCII report for a span forest + metric snapshot."""
    lines: list[str] = ["== span tree =="]
    if not roots:
        lines.append("  (no spans recorded)")

    def visit(sp: Span, depth: int) -> None:
        lines.append(_span_line(sp, depth))
        for child in sp.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)

    latencies = {
        name[len("span."):-len(".duration_s")]: stats
        for name, stats in snapshot.histograms.items()
        if name.startswith("span.") and name.endswith(".duration_s")
    }
    if latencies:
        lines.append("")
        lines.append("== span latencies ==")
        width = max(len(n) for n in latencies)
        lines.append(
            f"  {'span':<{width}}  {'count':>5}  {'p50':>10}  {'p90':>10}  "
            f"{'p99':>10}  {'total':>10}"
        )
        for name in sorted(latencies):
            s = latencies[name]
            lines.append(
                f"  {name:<{width}}  {s['count']:>5}  "
                f"{_fmt_duration(s['p50']):>10}  {_fmt_duration(s['p90']):>10}  "
                f"{_fmt_duration(s['p99']):>10}  {_fmt_duration(s['sum']):>10}"
            )

    if snapshot.counters:
        lines.append("")
        lines.append("== counters ==")
        width = max(len(n) for n in snapshot.counters)
        for name in sorted(snapshot.counters):
            lines.append(f"  {name:<{width}}  {_fmt_count(snapshot.counters[name])}")

    if snapshot.gauges:
        lines.append("")
        lines.append("== gauges ==")
        width = max(len(n) for n in snapshot.gauges)
        for name in sorted(snapshot.gauges):
            lines.append(f"  {name:<{width}}  {snapshot.gauges[name]:.6g}")
    return "\n".join(lines)

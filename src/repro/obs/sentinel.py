"""Noise-aware perf-regression sentinel over the history ledger.

Two complementary checks, both exposed through ``python -m repro.obs
sentinel`` and wired into CI/`make smoke-obs-history`:

* :func:`check_artifact` — the *trajectory* gate.  Compares a fresh
  bench artifact against the latest ledger baseline for the same
  (benchmark, preset, case) with per-case tolerance bands on the timing
  fields (``t_*_s``).  A regression needs both a relative breach
  (fresh > ``ratio`` x baseline) and an absolute one (fresh - baseline >
  ``floor_s``), so microsecond-scale cases cannot trip the gate on
  scheduler noise.
* :func:`check_baseline_gates` — the *invariant* gate.  The declarative
  port of the per-bench assertions CI used to carry as inline python
  heredocs: required cases present, deterministic counters in range,
  speedup factors above their floors.  Deterministic facts are checked
  on every preset; wall-clock claims only on the large preset, and
  quick artifacts therefore pass trivially where only timing gates
  exist (that is the documented "ignore quick artifacts" behaviour).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.history import (
    Ledger,
    timing_fields,
    validate_artifact,
)

__all__ = [
    "BASELINE_GATES",
    "DEFAULT_FLOOR_S",
    "DEFAULT_RATIO",
    "SentinelReport",
    "check_artifact",
    "check_baseline_gates",
]

#: Relative tolerance band: fresh timing above ``ratio`` x baseline is a
#: candidate regression.  1.5x absorbs normal CI-runner variance.
DEFAULT_RATIO = 1.5

#: Absolute band: the excess must also exceed this many seconds, so
#: sub-50ms cases can never regress on noise alone.
DEFAULT_FLOOR_S = 0.05


@dataclass
class SentinelReport:
    """Outcome of one sentinel run: per-case findings plus verdict."""

    source: str
    regressions: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no regression (notes alone never fail the gate)."""
        return not self.regressions

    def render(self) -> str:
        """Human-readable multi-line summary (CLI output)."""
        lines = [f"sentinel: {self.source}"]
        lines += [f"  REGRESSION {msg}" for msg in self.regressions]
        lines += [f"  {msg}" for msg in self.notes]
        lines.append(
            f"  verdict: {'FAIL' if self.regressions else 'PASS'} "
            f"({len(self.regressions)} regression(s))"
        )
        return "\n".join(lines)


def check_artifact(
    artifact_path: "Path | str",
    ledger: "Ledger | None" = None,
    *,
    ratio: float = DEFAULT_RATIO,
    floor_s: float = DEFAULT_FLOOR_S,
) -> SentinelReport:
    """Tolerance-band comparison of a fresh artifact vs the ledger baseline.

    Every entry's timing fields (``t_*_s``) are compared against the
    latest ledger record for the same (benchmark, preset, case,
    case_index) — excluding the fresh artifact itself if it was already
    ingested.  Cases or fields without a baseline are reported as notes,
    never failures: a brand-new bench must be ingestable before it can
    be gated.
    """
    ledger = ledger if ledger is not None else Ledger()
    path = Path(artifact_path)
    raw = path.read_bytes()
    payload = validate_artifact(json.loads(raw.decode()), source=path.name)
    sha = hashlib.sha256(raw).hexdigest()[:16]
    report = SentinelReport(source=path.name)
    benchmark, preset = payload["benchmark"], payload["preset"]
    counts: dict[str, int] = {}
    for entry in payload["entries"]:
        case = entry["case"]
        index = counts.get(case, 0)
        counts[case] = index + 1
        fresh = timing_fields(entry)
        base_rec = ledger.baseline_for(
            benchmark, preset, case, index, exclude_sha=sha
        )
        if base_rec is None:
            # The only ledger record may be this very content (the
            # "ingest then rerun unmodified" flow): a self-comparison is
            # trivially within band, which is exactly the verdict an
            # unmodified rerun should get.
            base_rec = ledger.baseline_for(benchmark, preset, case, index)
        label = f"{case}#{index}" if index else case
        if base_rec is None:
            if fresh:
                report.notes.append(f"{label}: no baseline in ledger (new case)")
            continue
        base = timing_fields(base_rec["fields"])
        for name, fresh_v in sorted(fresh.items()):
            base_v = base.get(name)
            if base_v is None:
                report.notes.append(f"{label}.{name}: no baseline field")
                continue
            if fresh_v > base_v * ratio and fresh_v - base_v > floor_s:
                report.regressions.append(
                    f"{label}.{name}: {fresh_v:.4g}s vs baseline "
                    f"{base_v:.4g}s @ {base_rec['rev']} "
                    f"({fresh_v / base_v:.2f}x > {ratio:g}x band)"
                )
            else:
                report.notes.append(
                    f"{label}.{name}: {fresh_v:.4g}s within band of "
                    f"{base_v:.4g}s"
                )
    return report


# -- declarative baseline gates (the former CI heredocs) -------------------


def _entry(payload: dict, case: str) -> "dict | None":
    """First entry of ``case`` in an artifact, or ``None``."""
    return next((e for e in payload["entries"] if e["case"] == case), None)


def _require_cases(payload: dict, cases: set[str]) -> list[str]:
    """Failure messages for any required case missing from the artifact."""
    have = {e["case"] for e in payload["entries"]}
    return [f"missing required case {c!r}" for c in sorted(cases - have)]


def _gates_lp_scaling(payload: dict) -> list[str]:
    """LP benchmark invariants (speedups large-only, evidence any preset)."""
    fails = _require_cases(
        payload,
        {
            "lp_scaling",
            "assembly_speedup",
            "lp_persistent",
            "lp_persistent_sweep",
            "lp_warm_iterations",
        },
    )
    if fails:
        return fails
    for e in payload["entries"]:
        if e["case"] == "lp_scaling" and not (
            e.get("method_used") and e.get("lp_iterations", 0) > 0
        ):
            fails.append(f"lp_scaling entry lacks solve evidence: {e}")
    if payload["preset"] == "large":
        sweep = _entry(payload, "lp_persistent_sweep")
        if sweep.get("sweep_speedup", 0.0) < 3.0:
            fails.append(
                f"persistent sweep speedup {sweep.get('sweep_speedup')!r} < 3.0"
            )
        for e in payload["entries"]:
            if e["case"] == "lp_persistent" and not (
                e.get("cold_iterations", 0) > 0 and e.get("warm_iterations", 0) > 0
            ):
                fails.append(f"lp_persistent entry lacks iteration evidence: {e}")
        warm = _entry(payload, "lp_warm_iterations")
        if not warm.get("iterations_cold", 0) > 1.2 * warm.get(
            "iterations_warm", 0
        ):
            fails.append(f"warm-start iteration win went missing: {warm}")
    return fails


def _gates_transient(payload: dict) -> list[str]:
    """Transient benchmark invariants (matvec counts are deterministic)."""
    fails = _require_cases(
        payload, {"transient_grid_reuse", "transient_registry_cache"}
    )
    if fails:
        return fails
    reuse = _entry(payload, "transient_grid_reuse")
    if reuse.get("matvec_speedup", 0.0) < 5.0:
        fails.append(
            f"grid-reuse matvec speedup {reuse.get('matvec_speedup')!r} < 5.0"
        )
    return fails


def _gates_fluid(payload: dict) -> list[str]:
    """Fluid-tier invariants (million-user wall clock large-only)."""
    fails = _require_cases(
        payload, {"fluid_million", "fluid_small_agreement", "fluid_convergence"}
    )
    if fails:
        return fails
    million = _entry(payload, "fluid_million")
    if million.get("states_enumerated"):
        fails.append(f"fluid solve enumerated the CTMC state space: {million}")
    small = _entry(payload, "fluid_small_agreement")
    if not small.get("max_rel_error", 1.0) <= 1e-3:
        fails.append(f"small-N exactness margin lost: {small}")
    conv = _entry(payload, "fluid_convergence")
    if not (
        conv.get("monotone")
        and conv.get("gap_last", 1.0) < conv.get("gap_first", 0.0)
    ):
        fails.append(f"doubling-population convergence lost: {conv}")
    if payload["preset"] == "large":
        if million.get("population") != 1_000_000:
            fails.append(f"large fluid artifact is not the million-user run: {million}")
        if not million.get("saturated"):
            fails.append(f"million-user scenario no longer saturated: {million}")
        if not million.get("t_wall_s", 1e9) < 30.0:
            fails.append(f"million-user solve over the 30s ceiling: {million}")
        if not million.get("fluid_dim", 1e9) < 10:
            fails.append(f"fluid dimension blew up: {million}")
    return fails


def _gates_kron(payload: dict) -> list[str]:
    """Kronecker-backend invariants (memory win is deterministic)."""
    fails = _require_cases(payload, {"kron_memory_win", "kron_registry_solves"})
    if fails:
        return fails
    win = _entry(payload, "kron_memory_win")
    if win.get("memory_win_factor", 0.0) < 4.0:
        fails.append(
            f"operator-vs-CSR memory win {win.get('memory_win_factor')!r} < 4.0"
        )
    solves = _entry(payload, "kron_registry_solves")
    if solves.get("backend") not in ("auto", "operator"):
        fails.append(f"registry dispatched an unexpected backend: {solves}")
    return fails


#: Per-benchmark invariant checks; each maps an artifact payload to a
#: list of failure strings (empty = pass).  Benchmarks without an entry
#: are schema-validated only.
BASELINE_GATES = {
    "lp_scaling": _gates_lp_scaling,
    "transient": _gates_transient,
    "fluid": _gates_fluid,
    "kron": _gates_kron,
}


def check_baseline_gates(artifact_path: "Path | str") -> SentinelReport:
    """Run the declarative invariant gates over one artifact.

    Validates the envelope, then applies the benchmark's
    :data:`BASELINE_GATES` entry.  Unknown benchmarks pass with a note —
    a new bench gets schema validation for free and adds its gates here
    when it has invariants worth enforcing.
    """
    path = Path(artifact_path)
    payload = validate_artifact(
        json.loads(path.read_text()), source=path.name
    )
    report = SentinelReport(source=path.name)
    gate = BASELINE_GATES.get(payload["benchmark"])
    if gate is None:
        report.notes.append(
            f"no baseline gates registered for benchmark "
            f"{payload['benchmark']!r} (schema-validated only)"
        )
        return report
    report.regressions.extend(gate(payload))
    if report.ok:
        report.notes.append(
            f"baseline gates OK ({payload['benchmark']}, "
            f"preset={payload['preset']}, {len(payload['entries'])} entries)"
        )
    return report

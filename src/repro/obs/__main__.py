"""Command-line entry point for the observability layer.

``python -m repro.obs <command>``:

* ``report`` / ``validate`` — render / schema-check a JSONL trace file
  (the checks ``make smoke-obs`` relies on).
* ``history ingest|show|diff|trend|validate`` — the perf-history ledger
  over the ``BENCH_*.json`` artifacts (see :mod:`repro.obs.history`).
* ``sentinel check|baseline`` — noise-aware regression gate against the
  ledger, and the declarative per-benchmark invariant gates CI runs
  (see :mod:`repro.obs.sentinel`).
* ``serve`` — stdlib HTTP endpoint exposing the process-wide telemetry
  as Prometheus text / JSON (see :mod:`repro.obs.export`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.core import TelemetrySnapshot, enable, get_telemetry
from repro.obs.export import MetricsServer, render_prometheus
from repro.obs.history import (
    Ledger,
    benchmark_from_path,
    render_diff,
    render_show,
    render_trend,
    validate_artifact,
)
from repro.obs.report import render_summary
from repro.obs.sentinel import (
    DEFAULT_FLOOR_S,
    DEFAULT_RATIO,
    check_artifact,
    check_baseline_gates,
)
from repro.obs.trace import load_trace, spans_from_records, validate_trace


def _snapshot_from_records(records: "list[dict]") -> TelemetrySnapshot:
    """Rebuild the metrics snapshot embedded in a trace's final record."""
    for rec in records:
        if rec.get("type") == "metrics":
            return TelemetrySnapshot(
                counters=rec.get("counters", {}),
                gauges=rec.get("gauges", {}),
                histograms=rec.get("histograms", {}),
            )
    return TelemetrySnapshot()


def _cmd_report(args: argparse.Namespace) -> int:
    """Print the ASCII summary of a trace file."""
    records = load_trace(args.trace)
    problems = validate_trace(records)
    if problems:
        for p in problems:
            print(f"warning: {p}", file=sys.stderr)
    print(render_summary(spans_from_records(records), _snapshot_from_records(records)))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """Validate a trace file against the schema; exit 1 on problems."""
    records = load_trace(args.trace)
    problems = validate_trace(records)
    if problems:
        for p in problems:
            print(f"invalid: {p}", file=sys.stderr)
        return 1
    n_spans = sum(1 for r in records if r.get("type") == "span")
    print(f"valid trace: {len(records)} records, {n_spans} spans")
    return 0


# -- history ---------------------------------------------------------------


def _ledger(args: argparse.Namespace) -> Ledger:
    """The ledger selected by ``--ledger-dir`` (default: env / .repro-perf)."""
    return Ledger(args.ledger_dir)


def _artifact_paths(args: argparse.Namespace) -> list[Path]:
    """Artifact paths from positional args, else ``BENCH_*.json`` in --dir."""
    if getattr(args, "artifacts", None):
        return [Path(p) for p in args.artifacts]
    return sorted(Path(args.dir).glob("BENCH_*.json"))


def _cmd_history_validate(args: argparse.Namespace) -> int:
    """Schema-check every artifact; exit 1 on the first batch of problems."""
    paths = _artifact_paths(args)
    if not paths:
        print("no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        try:
            payload = validate_artifact(
                json.loads(path.read_text()), source=path.name
            )
            benchmark_from_path(path)
        except (ValueError, OSError) as exc:
            print(f"invalid: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(
            f"valid: {path.name} ({payload['benchmark']}, "
            f"preset={payload['preset']}, {len(payload['entries'])} entries)"
        )
    return 1 if failures else 0


def _cmd_history_ingest(args: argparse.Namespace) -> int:
    """Ingest artifacts into the ledger (idempotent per content hash)."""
    ledger = _ledger(args)
    total = 0
    for path in _artifact_paths(args):
        n = ledger.ingest(path)
        total += n
        status = f"{n} records" if n else "already ingested"
        print(f"ingest {path.name}: {status}")
    print(f"ledger {ledger.path}: +{total} records")
    return 0


def _cmd_history_show(args: argparse.Namespace) -> int:
    """Render the trajectory (auto-ingesting ``--dir`` artifacts first)."""
    ledger = _ledger(args)
    if not args.no_ingest:
        for name, n in ledger.ingest_directory(args.dir).items():
            if n:
                print(f"ingested {name}: {n} records")
    print(render_show(ledger))
    return 0


def _cmd_history_diff(args: argparse.Namespace) -> int:
    """Field-by-field diff of the two most recent snapshots."""
    print(render_diff(_ledger(args), args.benchmark, preset=args.preset))
    return 0


def _cmd_history_trend(args: argparse.Namespace) -> int:
    """One field's time series across all ingested snapshots."""
    print(
        render_trend(
            _ledger(args),
            args.benchmark,
            args.case,
            args.field,
            preset=args.preset,
            case_index=args.case_index,
        )
    )
    return 0


# -- sentinel --------------------------------------------------------------


def _cmd_sentinel_check(args: argparse.Namespace) -> int:
    """Tolerance-band regression check vs the ledger; exit 1 on regression."""
    ledger = _ledger(args)
    failed = False
    for path in _artifact_paths(args):
        report = check_artifact(
            path, ledger, ratio=args.ratio, floor_s=args.floor_s
        )
        print(report.render())
        failed = failed or not report.ok
    return 1 if failed else 0


def _cmd_sentinel_baseline(args: argparse.Namespace) -> int:
    """Declarative invariant gates over artifacts; exit 1 on any failure."""
    failed = False
    for path in _artifact_paths(args):
        report = check_baseline_gates(path)
        print(report.render())
        failed = failed or not report.ok
    return 1 if failed else 0


# -- serve -----------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    """Expose the process telemetry over HTTP (Prometheus text + JSON)."""
    tele = get_telemetry()
    if not tele.enabled:
        tele = enable()
    server = MetricsServer(host=args.host, port=args.port).start()
    print(f"serving metrics on {server.url}/metrics (and /metrics.json)")
    try:
        if args.demo_sweep:
            from repro.experiments.fig8 import fig5_network
            from repro.runtime.sweep import SweepRunner

            populations = [2, 3, 4, 5]
            print(f"demo sweep: fig5 network, N in {populations} ...")
            runner = SweepRunner(cache_dir=None)
            runner.population_sweep(
                fig5_network(populations[0]), populations, method="lp",
                workers=2,
            )
            print(f"demo sweep done in {runner.last_wall_time_s:.2f}s")
        if args.once:
            sys.stdout.write(render_prometheus(tele.snapshot()))
            return 0
        server._thread.join()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Traces, perf history, regression sentinel, and "
        "metrics exposition for repro.obs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="render the ASCII profiling summary")
    p_report.add_argument("trace", help="path to a .jsonl trace file")
    p_report.set_defaults(func=_cmd_report)
    p_validate = sub.add_parser("validate", help="check a trace against the schema")
    p_validate.add_argument("trace", help="path to a .jsonl trace file")
    p_validate.set_defaults(func=_cmd_validate)

    p_history = sub.add_parser("history", help="perf-history ledger commands")
    hsub = p_history.add_subparsers(dest="subcommand", required=True)

    def _ledger_opts(p: argparse.ArgumentParser, artifacts: bool = True) -> None:
        """Shared --ledger-dir/--dir/artifact options for ledger commands."""
        p.add_argument(
            "--ledger-dir",
            default=None,
            help="ledger directory (default: $REPRO_PERF_DIR or .repro-perf)",
        )
        p.add_argument(
            "--dir", default=".",
            help="directory scanned for BENCH_*.json (default: .)",
        )
        if artifacts:
            p.add_argument(
                "artifacts", nargs="*",
                help="explicit artifact paths (default: BENCH_*.json in --dir)",
            )

    h_validate = hsub.add_parser(
        "validate", help="schema-check BENCH_*.json artifacts"
    )
    _ledger_opts(h_validate)
    h_validate.set_defaults(func=_cmd_history_validate)
    h_ingest = hsub.add_parser("ingest", help="append artifacts to the ledger")
    _ledger_opts(h_ingest)
    h_ingest.set_defaults(func=_cmd_history_ingest)
    h_show = hsub.add_parser("show", help="render the perf trajectory")
    _ledger_opts(h_show, artifacts=False)
    h_show.add_argument(
        "--no-ingest", action="store_true",
        help="render the ledger as-is without scanning --dir",
    )
    h_show.set_defaults(func=_cmd_history_show)
    h_diff = hsub.add_parser("diff", help="diff the two most recent snapshots")
    _ledger_opts(h_diff, artifacts=False)
    h_diff.add_argument("benchmark", help="benchmark name (e.g. lp_scaling)")
    h_diff.add_argument("--preset", default=None, choices=("quick", "large"))
    h_diff.set_defaults(func=_cmd_history_diff)
    h_trend = hsub.add_parser("trend", help="one field's series over time")
    _ledger_opts(h_trend, artifacts=False)
    h_trend.add_argument("benchmark")
    h_trend.add_argument("case")
    h_trend.add_argument("field")
    h_trend.add_argument("--preset", default=None, choices=("quick", "large"))
    h_trend.add_argument("--case-index", type=int, default=0)
    h_trend.set_defaults(func=_cmd_history_trend)

    p_sentinel = sub.add_parser("sentinel", help="perf regression gates")
    ssub = p_sentinel.add_subparsers(dest="subcommand", required=True)
    s_check = ssub.add_parser(
        "check", help="tolerance-band check vs the ledger baseline"
    )
    _ledger_opts(s_check)
    s_check.add_argument(
        "--ratio", type=float, default=DEFAULT_RATIO,
        help=f"relative tolerance band (default {DEFAULT_RATIO}x)",
    )
    s_check.add_argument(
        "--floor-s", type=float, default=DEFAULT_FLOOR_S,
        help=f"absolute excess floor in seconds (default {DEFAULT_FLOOR_S})",
    )
    s_check.set_defaults(func=_cmd_sentinel_check)
    s_baseline = ssub.add_parser(
        "baseline", help="declarative per-benchmark invariant gates"
    )
    _ledger_opts(s_baseline)
    s_baseline.set_defaults(func=_cmd_sentinel_baseline)

    p_serve = sub.add_parser(
        "serve", help="HTTP endpoint exposing live Prometheus metrics"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=9109)
    p_serve.add_argument(
        "--once", action="store_true",
        help="print the current exposition to stdout and exit",
    )
    p_serve.add_argument(
        "--demo-sweep", action="store_true",
        help="run a small parallel sweep while serving (smoke/demo)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line entry point: ``python -m repro.obs <report|validate>``.

``report`` renders the ASCII span-tree / latency summary of a JSONL
trace file; ``validate`` checks it against the trace schema and exits
non-zero on problems (the check ``make smoke-obs`` relies on).
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.core import TelemetrySnapshot
from repro.obs.report import render_summary
from repro.obs.trace import load_trace, spans_from_records, validate_trace


def _snapshot_from_records(records: "list[dict]") -> TelemetrySnapshot:
    """Rebuild the metrics snapshot embedded in a trace's final record."""
    for rec in records:
        if rec.get("type") == "metrics":
            return TelemetrySnapshot(
                counters=rec.get("counters", {}),
                gauges=rec.get("gauges", {}),
                histograms=rec.get("histograms", {}),
            )
    return TelemetrySnapshot()


def _cmd_report(args: argparse.Namespace) -> int:
    """Print the ASCII summary of a trace file."""
    records = load_trace(args.trace)
    problems = validate_trace(records)
    if problems:
        for p in problems:
            print(f"warning: {p}", file=sys.stderr)
    print(render_summary(spans_from_records(records), _snapshot_from_records(records)))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """Validate a trace file against the schema; exit 1 on problems."""
    records = load_trace(args.trace)
    problems = validate_trace(records)
    if problems:
        for p in problems:
            print(f"invalid: {p}", file=sys.stderr)
        return 1
    n_spans = sum(1 for r in records if r.get("type") == "span")
    print(f"valid trace: {len(records)} records, {n_spans} spans")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Parse arguments and dispatch to the report/validate subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro.obs JSONL trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_report = sub.add_parser("report", help="render the ASCII profiling summary")
    p_report.add_argument("trace", help="path to a .jsonl trace file")
    p_report.set_defaults(func=_cmd_report)
    p_validate = sub.add_parser("validate", help="check a trace against the schema")
    p_validate.add_argument("trace", help="path to a .jsonl trace file")
    p_validate.set_defaults(func=_cmd_validate)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

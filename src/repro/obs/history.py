"""Persistent perf-history ledger for benchmark artifacts.

The five committed ``BENCH_*.json`` artifacts are point-in-time
snapshots; this module gives them a *trajectory*.  A :class:`Ledger` is
an append-only JSONL store (default ``.repro-perf/ledger.jsonl``) with
one record per artifact entry, keyed by (benchmark, preset, case,
case_index) plus the git revision, UTC timestamp, and a content hash of
the source artifact so re-ingesting the same file is a no-op.

The ledger is the substrate for two consumers: ``python -m repro.obs
history show|diff|trend`` renders the trajectory, and
:mod:`repro.obs.sentinel` compares fresh bench runs against the latest
ledger baseline with noise-aware tolerance bands.

Artifact naming contract (see ``benchmarks/bench_reporting.py``):
``BENCH_<benchmark>.json`` is the tracked large-preset baseline;
``BENCH_<benchmark>.quick.json`` is the quick-preset artifact, untracked
by default (``BENCH_kron.quick.json`` is deliberately committed as the
materializable-shape record).  :func:`artifact_kind` and
:func:`benchmark_from_path` encode that contract so every tool parses
names the same way.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path

__all__ = [
    "ARTIFACT_PRESETS",
    "ARTIFACT_SCHEMA_VERSION",
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "artifact_kind",
    "benchmark_from_path",
    "current_git_rev",
    "timing_fields",
    "validate_artifact",
]

#: Envelope schema version shared with ``benchmarks/bench_reporting.py``.
ARTIFACT_SCHEMA_VERSION = 1

#: Ledger record schema version (bump on incompatible record changes).
LEDGER_SCHEMA_VERSION = 1

#: Presets a valid artifact may declare.
ARTIFACT_PRESETS = ("quick", "large")

_SCALAR_TYPES = (bool, int, float, str, type(None))


def artifact_kind(path: "Path | str") -> str:
    """``"quick"`` for ``BENCH_*.quick.json``, else ``"canonical"``.

    Canonical artifacts are the tracked large-preset baselines that CI
    gates against; quick artifacts are fast-preset runs whose absolute
    numbers are not comparable to the baselines.
    """
    return "quick" if Path(path).name.endswith(".quick.json") else "canonical"


def benchmark_from_path(path: "Path | str") -> str:
    """Benchmark name encoded in an artifact filename.

    ``BENCH_lp_scaling.json`` and ``BENCH_lp_scaling.quick.json`` both
    map to ``lp_scaling``.  Raises :class:`ValueError` for filenames
    outside the ``BENCH_<name>[.quick].json`` contract.
    """
    name = Path(path).name
    if not (name.startswith("BENCH_") and name.endswith(".json")):
        raise ValueError(f"not a BENCH_*.json artifact name: {name!r}")
    stem = name[len("BENCH_") : -len(".json")]
    if stem.endswith(".quick"):
        stem = stem[: -len(".quick")]
    if not stem:
        raise ValueError(f"artifact name has an empty benchmark: {name!r}")
    return stem


def validate_artifact(payload: dict, *, source: str = "artifact") -> dict:
    """Check one bench artifact against the shared envelope schema.

    The envelope is ``{"schema": 1, "benchmark": str, "preset":
    "quick"|"large", "python": str, "entries": [{"case": str, ...scalar
    fields...}]}`` with every float finite.  Raises :class:`ValueError`
    naming ``source`` on the first violation; returns ``payload`` so the
    call composes (``validate_artifact(json.load(f))``).
    """
    if not isinstance(payload, dict):
        raise ValueError(f"{source}: artifact must be a JSON object")
    if payload.get("schema") != ARTIFACT_SCHEMA_VERSION:
        raise ValueError(
            f"{source}: schema must be {ARTIFACT_SCHEMA_VERSION}, "
            f"got {payload.get('schema')!r}"
        )
    benchmark = payload.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        raise ValueError(f"{source}: benchmark must be a non-empty string")
    if payload.get("preset") not in ARTIFACT_PRESETS:
        raise ValueError(
            f"{source}: preset must be one of {ARTIFACT_PRESETS}, "
            f"got {payload.get('preset')!r}"
        )
    if not isinstance(payload.get("python"), str):
        raise ValueError(f"{source}: python must be a version string")
    entries = payload.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{source}: entries must be a non-empty list")
    for i, entry in enumerate(entries):
        where = f"{source}: entries[{i}]"
        if not isinstance(entry, dict):
            raise ValueError(f"{where} must be an object")
        case = entry.get("case")
        if not isinstance(case, str) or not case:
            raise ValueError(f"{where} must have a non-empty 'case'")
        for key, value in entry.items():
            if not isinstance(value, _SCALAR_TYPES):
                raise ValueError(
                    f"{where} field {key!r} has non-scalar type "
                    f"{type(value).__name__}"
                )
            if isinstance(value, float) and not math.isfinite(value):
                raise ValueError(f"{where} field {key!r} is non-finite")
    return payload


def current_git_rev(cwd: "Path | str | None" = None) -> str:
    """Short git revision of the working tree (best effort).

    Prefers the ``GITHUB_SHA`` env var (exact even in CI's detached
    checkouts), then ``git rev-parse --short HEAD``; falls back to
    ``"unknown"`` outside a repository so ingestion never fails on
    provenance.
    """
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha[:12]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def timing_fields(fields: dict) -> dict:
    """The timing measurements of an entry: float fields named ``t_*_s``.

    This is the naming convention ``PerfReporter.record_snapshot`` emits
    (``t_<span>_s``) and the benches use for wall timings
    (``t_wall_s``); the sentinel applies tolerance bands to exactly
    these fields and compares everything else strictly or not at all.
    """
    return {
        k: float(v)
        for k, v in fields.items()
        if k.startswith("t_") and k.endswith("_s") and isinstance(v, (int, float))
        and not isinstance(v, bool)
    }


def _utc_now_iso() -> str:
    """Current UTC wall time in ISO-8601 (wall provenance, not a timing)."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


class Ledger:
    """Append-only JSONL perf-history store under a ``.repro-perf/`` dir.

    One record per (artifact, entry): the envelope provenance plus the
    entry's scalar fields.  Records carry the sha256 of the artifact
    bytes, so :meth:`ingest` is idempotent per artifact content — the
    trajectory only grows when the numbers actually change.
    """

    def __init__(self, root: "Path | str | None" = None) -> None:
        """Open (lazily) the ledger under ``root``.

        ``root`` defaults to the ``REPRO_PERF_DIR`` env var, then
        ``.repro-perf`` in the current directory.  Nothing is created
        until the first append.
        """
        if root is None:
            root = os.environ.get("REPRO_PERF_DIR") or ".repro-perf"
        self.root = Path(root)
        self.path = self.root / "ledger.jsonl"

    # -- raw record access -------------------------------------------------

    def records(
        self,
        benchmark: "str | None" = None,
        preset: "str | None" = None,
        case: "str | None" = None,
    ) -> list[dict]:
        """All ledger records, optionally filtered, in append order."""
        if not self.path.exists():
            return []
        out: list[dict] = []
        with self.path.open() as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self.path}:{lineno}: corrupt ledger line: {exc}"
                    ) from exc
                if benchmark is not None and rec.get("benchmark") != benchmark:
                    continue
                if preset is not None and rec.get("preset") != preset:
                    continue
                if case is not None and rec.get("case") != case:
                    continue
                out.append(rec)
        return out

    def artifact_shas(self) -> set[str]:
        """Content hashes of every artifact already ingested."""
        return {r["artifact_sha"] for r in self.records()}

    def _append(self, records: list[dict]) -> None:
        """Append records as JSONL lines (creates the store on first use)."""
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            for rec in records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")

    # -- ingestion ---------------------------------------------------------

    def ingest(
        self,
        artifact_path: "Path | str",
        *,
        rev: "str | None" = None,
        timestamp: "str | None" = None,
    ) -> int:
        """Ingest one ``BENCH_*.json`` artifact; returns records appended.

        Validates the envelope first (a corrupt artifact never reaches
        the store), then appends one record per entry.  Re-ingesting
        byte-identical content returns 0.  ``case_index`` disambiguates
        repeated case names within one artifact (e.g. the per-population
        ``lp_persistent`` points).
        """
        path = Path(artifact_path)
        raw = path.read_bytes()
        sha = hashlib.sha256(raw).hexdigest()[:16]
        if sha in self.artifact_shas():
            return 0
        payload = validate_artifact(json.loads(raw.decode()), source=path.name)
        benchmark_from_path(path)  # enforce the naming contract too
        rev = rev if rev is not None else current_git_rev(path.parent)
        ts = timestamp if timestamp is not None else _utc_now_iso()
        counts: dict[str, int] = {}
        records = []
        for entry in payload["entries"]:
            case = entry["case"]
            index = counts.get(case, 0)
            counts[case] = index + 1
            records.append(
                {
                    "schema": LEDGER_SCHEMA_VERSION,
                    "ts": ts,
                    "rev": rev,
                    "benchmark": payload["benchmark"],
                    "preset": payload["preset"],
                    "python": payload["python"],
                    "artifact": path.name,
                    "artifact_sha": sha,
                    "case": case,
                    "case_index": index,
                    "fields": {k: v for k, v in entry.items() if k != "case"},
                }
            )
        self._append(records)
        return len(records)

    def ingest_directory(
        self, directory: "Path | str" = ".", pattern: str = "BENCH_*.json"
    ) -> dict[str, int]:
        """Ingest every matching artifact in ``directory``.

        Returns ``{filename: records_appended}`` (0 marks an already-
        ingested artifact).  The default pattern picks up quick
        artifacts too — the ledger keeps the full history; consumers
        filter by preset.
        """
        results: dict[str, int] = {}
        for path in sorted(Path(directory).glob(pattern)):
            results[path.name] = self.ingest(path)
        return results

    # -- queries -----------------------------------------------------------

    def baseline_for(
        self,
        benchmark: str,
        preset: str,
        case: str,
        case_index: int = 0,
        *,
        exclude_sha: "str | None" = None,
    ) -> "dict | None":
        """Latest ledger record for one keyed case, or ``None``.

        ``exclude_sha`` lets the sentinel skip the artifact under test
        when it was already ingested (compare against the *previous*
        measurement, not itself).
        """
        best: "dict | None" = None
        for rec in self.records(benchmark=benchmark, preset=preset, case=case):
            if rec.get("case_index") != case_index:
                continue
            if exclude_sha is not None and rec.get("artifact_sha") == exclude_sha:
                continue
            if best is None or rec["ts"] >= best["ts"]:
                best = rec
        return best

    def snapshots(self, benchmark: str, preset: "str | None" = None) -> list[dict]:
        """Distinct ingested artifacts of a benchmark, oldest first.

        Each snapshot is ``{"ts", "rev", "preset", "artifact",
        "artifact_sha", "cases": {(case, case_index): fields}}``.
        """
        by_sha: dict[str, dict] = {}
        for rec in self.records(benchmark=benchmark, preset=preset):
            snap = by_sha.setdefault(
                rec["artifact_sha"],
                {
                    "ts": rec["ts"],
                    "rev": rec["rev"],
                    "preset": rec["preset"],
                    "artifact": rec["artifact"],
                    "artifact_sha": rec["artifact_sha"],
                    "cases": {},
                },
            )
            snap["cases"][(rec["case"], rec["case_index"])] = rec["fields"]
        return sorted(by_sha.values(), key=lambda s: s["ts"])

    def benchmarks(self) -> list[str]:
        """Sorted benchmark names present in the ledger."""
        return sorted({r["benchmark"] for r in self.records()})


# -- rendering (shared by the CLI and tests) -------------------------------


def render_show(ledger: Ledger) -> str:
    """ASCII trajectory: per benchmark/preset, each case's latest numbers."""
    lines: list[str] = []
    names = ledger.benchmarks()
    if not names:
        return f"perf ledger {ledger.path}: empty (run `history ingest` first)"
    lines.append(f"perf ledger {ledger.path}")
    for benchmark in names:
        for preset in ARTIFACT_PRESETS:
            snaps = ledger.snapshots(benchmark, preset=preset)
            if not snaps:
                continue
            latest = snaps[-1]
            lines.append(
                f"\n{benchmark} [{preset}] — {len(snaps)} snapshot(s), "
                f"latest {latest['ts']} @ {latest['rev']} ({latest['artifact']})"
            )
            for (case, index), fields in sorted(latest["cases"].items()):
                timings = timing_fields(fields)
                shown = ", ".join(
                    f"{k}={v:.4g}s" for k, v in sorted(timings.items())
                ) or ", ".join(
                    f"{k}={v}" for k, v in sorted(fields.items())[:3]
                )
                suffix = f"#{index}" if index else ""
                lines.append(f"  {case}{suffix}: {shown}")
    return "\n".join(lines)


def render_diff(ledger: Ledger, benchmark: str, preset: "str | None" = None) -> str:
    """Compare the two most recent snapshots of a benchmark field by field."""
    snaps = ledger.snapshots(benchmark, preset=preset)
    if len(snaps) < 2:
        return (
            f"{benchmark}: need >= 2 ingested snapshots to diff, "
            f"have {len(snaps)}"
        )
    old, new = snaps[-2], snaps[-1]
    lines = [
        f"{benchmark}: {old['ts']} @ {old['rev']}  ->  "
        f"{new['ts']} @ {new['rev']}"
    ]
    for key in sorted(set(old["cases"]) | set(new["cases"])):
        case, index = key
        suffix = f"#{index}" if index else ""
        a, b = old["cases"].get(key), new["cases"].get(key)
        if a is None or b is None:
            lines.append(f"  {case}{suffix}: {'added' if a is None else 'removed'}")
            continue
        for field in sorted(set(a) | set(b)):
            va, vb = a.get(field), b.get(field)
            if va == vb:
                continue
            if (
                isinstance(va, (int, float))
                and isinstance(vb, (int, float))
                and not isinstance(va, bool)
                and not isinstance(vb, bool)
                and va
            ):
                ratio = vb / va
                lines.append(
                    f"  {case}{suffix}.{field}: {va:.6g} -> {vb:.6g} "
                    f"({ratio:.2f}x)"
                )
            else:
                lines.append(f"  {case}{suffix}.{field}: {va!r} -> {vb!r}")
    if len(lines) == 1:
        lines.append("  (no field changed)")
    return "\n".join(lines)


def render_trend(
    ledger: Ledger,
    benchmark: str,
    case: str,
    field: str,
    preset: "str | None" = None,
    case_index: int = 0,
) -> str:
    """One field's time series across every ingested snapshot."""
    rows = []
    for snap in ledger.snapshots(benchmark, preset=preset):
        fields = snap["cases"].get((case, case_index))
        if fields is not None and field in fields:
            rows.append((snap["ts"], snap["rev"], fields[field]))
    if not rows:
        return f"{benchmark}/{case}.{field}: no ledger records"
    lines = [f"{benchmark}/{case}.{field}:"]
    for ts, rev, value in rows:
        shown = f"{value:.6g}" if isinstance(value, float) else repr(value)
        lines.append(f"  {ts} @ {rev}: {shown}")
    return "\n".join(lines)

"""`repro.obs` — structured tracing, metrics, and profiling.

The observability layer of the solver stack: :class:`Span` trees for
tracing, a process-wide :class:`Telemetry` registry of counters / gauges
/ histograms, JSONL trace export with a versioned schema, and an ASCII
profiling report.  Disabled by default (:class:`NullTelemetry`), with
measured enabled overhead tracked in ``BENCH_lp_scaling.json``.

Quick profiling session::

    import repro.obs as obs

    tele = obs.enable()
    registry.solve(network, "transient")
    print(tele.summary())
    obs.export_jsonl(tele, "trace.jsonl")
    obs.disable()

Or from the command line::

    python -m repro.scenarios solve drain-bursty-tandem \\
        --method transient --profile --trace-out trace.jsonl
    python -m repro.obs report trace.jsonl

See ``docs/observability.md`` for the span model, metric name tables,
and the schema version policy.
"""

from repro.obs.core import (
    NullTelemetry,
    Span,
    Telemetry,
    TelemetrySnapshot,
    clock,
    disable,
    enable,
    get_telemetry,
    set_telemetry,
    use,
)
from repro.obs.report import render_summary
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    export_jsonl,
    load_trace,
    span_records,
    spans_from_records,
    validate_trace,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "TelemetrySnapshot",
    "clock",
    "disable",
    "enable",
    "export_jsonl",
    "get_telemetry",
    "load_trace",
    "render_summary",
    "set_telemetry",
    "span_records",
    "spans_from_records",
    "use",
    "validate_trace",
]

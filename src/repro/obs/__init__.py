"""`repro.obs` — structured tracing, metrics, profiling, and perf history.

The observability layer of the solver stack: :class:`Span` trees for
tracing, a process-wide :class:`Telemetry` registry of counters / gauges
/ histograms, JSONL trace export with a versioned schema, an ASCII
profiling report, an always-on :class:`FlightRecorder` that attaches
trace dumps to structured solver errors, a persistent perf-history
:class:`Ledger` with a noise-aware regression sentinel, and Prometheus /
JSON metrics exposition.  Disabled by default (:class:`NullTelemetry`),
with measured enabled overhead tracked in ``BENCH_lp_scaling.json``.

Quick profiling session::

    import repro.obs as obs

    tele = obs.enable()
    registry.solve(network, "transient")
    print(tele.summary())
    obs.export_jsonl(tele, "trace.jsonl")
    obs.disable()

Or from the command line::

    python -m repro.scenarios solve drain-bursty-tandem \\
        --method transient --profile --trace-out trace.jsonl
    python -m repro.obs report trace.jsonl
    python -m repro.obs history show
    python -m repro.obs serve --port 9109

See ``docs/observability.md`` for the span model, metric name tables,
the ledger/sentinel workflow, and the schema version policy.
"""

from repro.obs.core import (
    FlightRecorder,
    NullTelemetry,
    Span,
    Telemetry,
    TelemetrySnapshot,
    clock,
    disable,
    disable_flight_recorder,
    enable,
    enable_flight_recorder,
    get_flight_recorder,
    get_telemetry,
    register_flight_dump_exceptions,
    set_telemetry,
    use,
)
from repro.obs.export import (
    render_metrics_json,
    render_prometheus,
    start_metrics_server,
)
from repro.obs.history import Ledger, validate_artifact
from repro.obs.report import render_summary
from repro.obs.sentinel import check_artifact, check_baseline_gates
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    export_jsonl,
    load_trace,
    span_records,
    spans_from_records,
    validate_trace,
)
from repro.utils.errors import SolverError as _SolverError

# Structured solver failures carry a flight-recorder dump when one is
# enabled; the subclasses (IterativeSolverError, SeriesTruncationError)
# are covered via isinstance.  Registered here — not in core — so the
# core module stays free of repro imports.
register_flight_dump_exceptions(_SolverError)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "FlightRecorder",
    "Ledger",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "TelemetrySnapshot",
    "check_artifact",
    "check_baseline_gates",
    "clock",
    "disable",
    "disable_flight_recorder",
    "enable",
    "enable_flight_recorder",
    "export_jsonl",
    "get_flight_recorder",
    "get_telemetry",
    "load_trace",
    "register_flight_dump_exceptions",
    "render_metrics_json",
    "render_prometheus",
    "render_summary",
    "set_telemetry",
    "span_records",
    "spans_from_records",
    "start_metrics_server",
    "use",
    "validate_artifact",
    "validate_trace",
]

"""Versioned JSONL trace export, loading, and schema validation.

A trace file is newline-delimited JSON with three record types, every
record carrying ``"schema": TRACE_SCHEMA_VERSION``:

* one ``header`` record (first line) — schema version and tool name;
* one ``span`` record per span, parents before children (depth-first),
  with ``span_id``/``parent_id`` assigned at export time;
* one ``metrics`` record (last line) — the final counter/gauge/histogram
  snapshot.

Schema policy: additive changes (new optional fields) keep the version;
any change that would break an existing reader bumps
:data:`TRACE_SCHEMA_VERSION`, and :func:`validate_trace` rejects files
whose major version it does not know.  See ``docs/observability.md``.
"""

from __future__ import annotations

import json

from repro.obs.core import Span, Telemetry

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "export_jsonl",
    "load_trace",
    "span_records",
    "spans_from_records",
    "validate_trace",
]

#: Current trace-file schema version (see module docstring for policy).
TRACE_SCHEMA_VERSION = 1

_SPAN_REQUIRED = (
    "span_id", "parent_id", "name", "start_s", "end_s", "duration_s",
    "attributes", "counters", "status", "error",
)


def _jsonable(value):
    """Coerce an attribute value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    try:  # numpy scalars
        return value.item()
    except AttributeError:
        return str(value)


def span_records(roots: "list[Span]") -> "list[dict]":
    """Flatten span trees into schema records, parents before children.

    Ids are assigned depth-first at export time (``1..n``), so the same
    tree always serializes identically — this is what makes trace files
    diffable and the parallel-sweep merge deterministic.
    """
    records: list[dict] = []
    counter = [0]

    def visit(sp: Span, parent_id: "int | None") -> None:
        counter[0] += 1
        sid = counter[0]
        records.append({
            "type": "span",
            "schema": TRACE_SCHEMA_VERSION,
            "span_id": sid,
            "parent_id": parent_id,
            "name": sp.name,
            "start_s": sp.start_s,
            "end_s": sp.end_s,
            "duration_s": sp.duration_s,
            "attributes": {k: _jsonable(v) for k, v in sp.attributes.items()},
            "counters": dict(sp.counters),
            "status": sp.status,
            "error": sp.error,
        })
        for child in sp.children:
            visit(child, sid)

    for root in roots:
        visit(root, None)
    return records


def spans_from_records(records: "list[dict]") -> "list[Span]":
    """Rebuild span trees from ``span`` records (inverse of export).

    Ignores non-span records, so the full record list of a loaded trace
    can be passed directly.  Returns the roots in record order.
    """
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for rec in records:
        if rec.get("type", "span") != "span":
            continue
        sp = Span.__new__(Span)
        sp.name = rec["name"]
        sp.attributes = dict(rec.get("attributes", {}))
        sp.counters = dict(rec.get("counters", {}))
        sp.children = []
        sp.start_s = rec["start_s"]
        sp.end_s = rec["end_s"]
        sp.status = rec.get("status", "ok")
        sp.error = rec.get("error")
        sp._telemetry = None
        by_id[rec["span_id"]] = sp
        parent = by_id.get(rec.get("parent_id"))
        if parent is not None:
            parent.children.append(sp)
        else:
            roots.append(sp)
    return roots


def export_jsonl(telemetry: Telemetry, path) -> int:
    """Write the telemetry's trace to ``path``; returns the record count.

    Layout: header record, every span record (depth-first), then the
    final metrics snapshot.
    """
    snap = telemetry.snapshot()
    records = [
        {
            "type": "header",
            "schema": TRACE_SCHEMA_VERSION,
            "tool": "repro.obs",
        },
        *span_records(telemetry.roots),
        {
            "type": "metrics",
            "schema": TRACE_SCHEMA_VERSION,
            "counters": snap.counters,
            "gauges": snap.gauges,
            "histograms": snap.histograms,
        },
    ]
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return len(records)


def load_trace(path) -> "list[dict]":
    """Parse a JSONL trace file into its record list (no validation)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_trace(records: "list[dict]") -> "list[str]":
    """Check records against the trace schema; returns problem strings.

    An empty list means the trace is valid.  Checks: header first with a
    known schema version, exactly one metrics record (last), span records
    complete with parents appearing before children, and every record
    stamped with the same schema version.
    """
    problems: list[str] = []
    if not records:
        return ["trace is empty"]
    head = records[0]
    if head.get("type") != "header":
        problems.append("first record is not a header")
    elif head.get("schema") != TRACE_SCHEMA_VERSION:
        problems.append(
            f"unknown schema version {head.get('schema')!r} "
            f"(reader supports {TRACE_SCHEMA_VERSION})"
        )
    metrics = [r for r in records if r.get("type") == "metrics"]
    if len(metrics) != 1:
        problems.append(f"expected exactly 1 metrics record, found {len(metrics)}")
    elif records[-1].get("type") != "metrics":
        problems.append("metrics record is not the last record")
    seen_ids: set[int] = set()
    for i, rec in enumerate(records):
        if rec.get("schema") != TRACE_SCHEMA_VERSION:
            problems.append(f"record {i}: missing/mismatched schema version")
        if rec.get("type") == "span":
            missing = [k for k in _SPAN_REQUIRED if k not in rec]
            if missing:
                problems.append(f"record {i}: span missing fields {missing}")
                continue
            pid = rec["parent_id"]
            if pid is not None and pid not in seen_ids:
                problems.append(
                    f"record {i}: parent_id {pid} not seen before child"
                )
            seen_ids.add(rec["span_id"])
        elif rec.get("type") not in ("header", "span", "metrics"):
            problems.append(f"record {i}: unknown type {rec.get('type')!r}")
    return problems

"""Balanced Job Bounds (BJB) — Zahorjan et al.

Tighter than ABA for product-form networks by comparing against balanced
systems; still first-moment-only, so equally blind to burstiness.  Provided
as an additional classical comparator for the ablation benches.

For a closed network without think time (all-queue):

    N / (D + (N-1) * Dmax)  <=  X(N)  <=  min(1/Dmax, N / (D + (N-1) * Davg))

with ``Davg = D / M``.
"""

from __future__ import annotations

from dataclasses import dataclass



from repro.network.model import Network, require_closed
from repro.utils.errors import NotSupportedError

__all__ = ["BjbBounds", "bjb_bounds"]


@dataclass(frozen=True)
class BjbBounds:
    """Balanced-job throughput bounds at one population."""

    population: int
    throughput_lower: float
    throughput_upper: float

    @property
    def response_lower(self) -> float:
        return self.population / self.throughput_upper

    @property
    def response_upper(self) -> float:
        return self.population / self.throughput_lower


def bjb_bounds(network: Network) -> BjbBounds:
    """Balanced job bounds for an all-queue closed network."""
    require_closed(network, "bjb")
    if any(s.kind != "queue" for s in network.stations):
        raise NotSupportedError(
            "balanced job bounds are implemented for all-queue networks "
            "(no delay/multiserver stations)"
        )
    demands = network.service_demands
    D = float(demands.sum())
    Dmax = float(demands.max())
    Davg = D / network.n_stations
    N = network.population
    upper = min(1.0 / Dmax, N / (D + (N - 1) * Davg))
    lower = N / (D + (N - 1) * Dmax)
    return BjbBounds(
        population=N,
        throughput_lower=lower,
        throughput_upper=upper,
    )

"""Exact Mean Value Analysis for product-form closed networks.

MVA is the classic capacity-planning workhorse the paper positions itself
against: exact for exponential (product-form) networks, structurally unable
to represent temporal dependence.  It provides (a) the "no-ACF model" of
Figure 3, (b) an independent oracle for exponential networks in the test
suite, and (c) the per-phase conditional solver inside the decomposition
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.model import Network, require_closed
from repro.utils.errors import NotSupportedError, ValidationError

__all__ = ["MvaResult", "mva"]


@dataclass(frozen=True)
class MvaResult:
    """Exact MVA output at the network's population.

    ``system_throughput`` is normalized to visit ratio 1 at station 0, so it
    is directly comparable with
    :meth:`repro.network.ExactSolution.system_throughput`.
    """

    network: Network
    system_throughput: float
    throughput: np.ndarray
    utilization: np.ndarray
    queue_length: np.ndarray
    residence_time: np.ndarray

    @property
    def response_time(self) -> float:
        """End-to-end response time ``N / X`` (reference station 0)."""
        return self.network.population / self.system_throughput


def mva(network: Network) -> MvaResult:
    """Exact MVA recursion over populations ``1..N``.

    Requires exponential service everywhere (product form).  Queue stations
    use the arrival-theorem recursion; delay stations contribute constant
    residence time.  Multiserver stations are not supported (load-dependent
    MVA is out of scope for the baselines the paper compares against).
    """
    require_closed(network, "mva")
    for st in network.stations:
        if st.phases != 1:
            raise ValidationError(
                f"MVA requires exponential service; station {st.name!r} has "
                f"{st.phases} phases. Replace MAP stations explicitly (the "
                "'no-ACF' methodology) before calling mva()."
            )
        if st.kind == "multiserver":
            raise NotSupportedError("multiserver stations are not supported by mva()")
    M = network.n_stations
    N = network.population
    v = network.visit_ratios
    means = np.array([s.mean_service_time for s in network.stations])
    demands = v * means
    is_delay = np.array([s.kind == "delay" for s in network.stations])

    Q = np.zeros(M)
    X = 0.0
    for n in range(1, N + 1):
        R = np.where(is_delay, demands, demands * (1.0 + Q))
        X = n / R.sum()
        Q = X * R
    return MvaResult(
        network=network,
        system_throughput=X,
        throughput=X * v,
        utilization=np.where(is_delay, np.nan, X * demands),
        queue_length=Q,
        residence_time=np.where(is_delay, demands, demands * (1.0 + Q)),
    )

"""Asymptotic Bound Analysis (ABA) — Lazowska et al., chapter 5.

The general-purpose bounds the paper shows in Figure 4: loose except at
very low or very high load.  For a closed network with total queue demand
``D = sum_k D_k``, bottleneck demand ``Dmax``, and think time ``Z`` (total
delay-station demand):

    X(N) <= min(1 / Dmax, N / (D + Z))
    X(N) >= N / (N * D + Z)

Response-time bounds follow from ``R = N / X - Z``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.model import Network, require_closed

__all__ = ["AbaBounds", "aba_bounds"]


@dataclass(frozen=True)
class AbaBounds:
    """ABA throughput/response-time bounds at one population."""

    population: int
    demand_total: float
    demand_max: float
    think_time: float
    throughput_lower: float
    throughput_upper: float

    @property
    def response_lower(self) -> float:
        """``R >= max(D, N * Dmax - Z)``."""
        return max(
            self.demand_total,
            self.population * self.demand_max - self.think_time,
        )

    @property
    def response_upper(self) -> float:
        """``R <= N * D`` (all jobs queue behind each other everywhere)."""
        return self.population * self.demand_total

    def utilization_bounds(self, demand_k: float) -> tuple[float, float]:
        """Per-station utilization bounds ``U_k = X * D_k``."""
        return (
            min(1.0, self.throughput_lower * demand_k),
            min(1.0, self.throughput_upper * demand_k),
        )


def aba_bounds(network: Network) -> AbaBounds:
    """Compute ABA bounds from the network's service demands.

    Only first moments enter — ABA is blind to variability *and* to
    temporal dependence, which is exactly the gap Figure 4 illustrates.
    """
    require_closed(network, "aba")
    is_delay = np.array([s.kind == "delay" for s in network.stations])
    demands = network.service_demands
    Z = float(demands[is_delay].sum())
    queue_demands = demands[~is_delay]
    if queue_demands.size == 0:
        raise ValueError("ABA needs at least one queueing station")
    D = float(queue_demands.sum())
    Dmax = float(queue_demands.max())
    N = network.population
    upper = min(1.0 / Dmax, N / (D + Z))
    lower = N / (N * D + Z)
    return AbaBounds(
        population=N,
        demand_total=D,
        demand_max=Dmax,
        think_time=Z,
        throughput_lower=lower,
        throughput_upper=upper,
    )

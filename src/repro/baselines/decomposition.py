"""Courtois-style decomposition-aggregation baseline.

The paper's Figure 4 shows that "basic Markov chain decomposition
techniques [Courtois 1975], commonly used for the evaluation of
non-product-form networks", become unacceptably inaccurate on
autocorrelated models as the population grows.  This module implements the
classic near-complete-decomposability recipe:

1. treat the (slow) MAP phase processes as frozen: for every joint phase
   configuration ``(h_1, ..., h_M)`` replace each MAP station by an
   exponential station at that phase's conditional completion rate;
2. solve each conditional network exactly (product form / MVA);
3. aggregate: weight conditional metrics by the stationary probability of
   the phase configuration (product of per-station phase distributions).

The recipe is exact in the limit of infinitely slow modulation and ignores
the correlation between phase and queue-length processes otherwise — the
failure mode the figure demonstrates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.baselines.mva import mva
from repro.maps.builders import exponential
from repro.network.model import Network, require_closed
from repro.network.stations import Station, queue
from repro.utils.errors import SolverError

__all__ = ["DecompositionResult", "decomposition"]

_MIN_RATE = 1e-9


@dataclass(frozen=True)
class DecompositionResult:
    """Phase-conditional decomposition estimates (approximate!)."""

    network: Network
    system_throughput: float
    throughput: np.ndarray
    utilization: np.ndarray
    queue_length: np.ndarray

    @property
    def response_time(self) -> float:
        return self.network.population / self.system_throughput


def _conditional_station(st: Station, phase: int) -> Station:
    """Exponential stand-in for ``st`` frozen in the given phase."""
    rate = float(st.service.D1[phase].sum())
    if rate <= _MIN_RATE:
        raise SolverError(
            f"station {st.name!r} has (near-)zero completion rate in phase "
            f"{phase}; the conditional product-form network is undefined — a "
            "known failure mode of decomposition-aggregation"
        )
    return Station(name=st.name, service=exponential(rate), kind=st.kind,
                   servers=st.servers)


def decomposition(network: Network) -> DecompositionResult:
    """Courtois decomposition-aggregation estimate of mean performance.

    Exact when every station is exponential (single phase configuration);
    an *approximation* otherwise, with error growing in population for
    autocorrelated service — reproduced by ``repro.experiments.fig4``.
    """
    require_closed(network, "decomposition")
    M = network.n_stations
    phase_axes = [range(st.phases) for st in network.stations]
    weights_per_station = [st.service.phase_stationary for st in network.stations]

    X_sys = 0.0
    X = np.zeros(M)
    U = np.zeros(M)
    Q = np.zeros(M)
    total_weight = 0.0
    for combo in itertools.product(*phase_axes):
        weight = float(
            np.prod([weights_per_station[k][combo[k]] for k in range(M)])
        )
        if weight <= 0.0:
            continue
        cond_net = Network(
            [
                _conditional_station(st, combo[k])
                for k, st in enumerate(network.stations)
            ],
            network.routing,
            network.population,
        )
        res = mva(cond_net)
        X_sys += weight * res.system_throughput
        X += weight * res.throughput
        U += weight * np.nan_to_num(res.utilization, nan=0.0)
        Q += weight * res.queue_length
        total_weight += weight
    if total_weight <= 0.0:
        raise SolverError("decomposition produced zero total weight")
    return DecompositionResult(
        network=network,
        system_throughput=X_sys / total_weight,
        throughput=X / total_weight,
        utilization=U / total_weight,
        queue_length=Q / total_weight,
    )

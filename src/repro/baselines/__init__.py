"""Classical comparators: MVA, ABA, balanced job bounds, decomposition."""

from repro.baselines.mva import MvaResult, mva
from repro.baselines.aba import AbaBounds, aba_bounds
from repro.baselines.bjb import BjbBounds, bjb_bounds
from repro.baselines.decomposition import DecompositionResult, decomposition

__all__ = [
    "MvaResult",
    "mva",
    "AbaBounds",
    "aba_bounds",
    "BjbBounds",
    "bjb_bounds",
    "DecompositionResult",
    "decomposition",
]

"""Initial-state specifications for transient analysis.

A transient solve is ``(network, pi0, time grid)``; the ``pi0`` here is a
distribution over the joint (population, phase) CTMC state space, which no
user wants to write by hand.  This module defines the small declarative
spec language the subsystem (and its cache fingerprints) use instead:

``"loaded:<station>"``
    Every job queued at the named station (the backlog of a *time-to-drain*
    study); each station's phase drawn independently from its service MAP's
    time-stationary phase law.
``"burst:<station>"``
    The stationary distribution conditioned on the named station's service
    MAP sitting in its bursty phase (see
    :func:`repro.workloads.bursty.bursty_phase`) — the *burst-response*
    experiment: how the network relaxes after a burst episode.
``"steady"``
    The stationary distribution itself (trajectories must stay flat; a
    sanity spec for tests and calibration).

Specs are plain strings, so they fingerprint canonically and survive the
result cache; stations may be named by index or by station name.
"""

from __future__ import annotations

import numpy as np

from repro.network.model import Network
from repro.network.statespace import NetworkStateSpace
from repro.utils.errors import ValidationError
from repro.workloads.bursty import bursty_phase

__all__ = ["initial_distribution", "parse_pi0_spec"]

#: Minimum probability mass of a conditioning event (``burst:`` specs): a
#: stationary bursty-phase probability below this means the conditional
#: distribution is numerically meaningless.
MIN_CONDITIONING_MASS = 1e-12


def _station_index(network: Network, token: str) -> int:
    """Resolve a station reference that may be an index or a name."""
    token = token.strip()
    if not token:
        raise ValidationError("pi0 spec names no station")
    try:
        k = int(token)
    except ValueError:
        return network.station_index(token)
    if not 0 <= k < network.n_stations:
        raise ValidationError(
            f"station index {k} out of range for {network.n_stations} stations"
        )
    return k


def parse_pi0_spec(network: Network, spec: str) -> tuple[str, "int | None"]:
    """Validate a pi0 spec string; returns ``(kind, station_index)``.

    ``kind`` is one of ``"loaded"``, ``"burst"``, ``"steady"``; the station
    is ``None`` for ``"steady"``.
    """
    if not isinstance(spec, str):
        raise ValidationError(
            f"pi0 spec must be a string, got {type(spec).__name__}"
        )
    head, _, tail = spec.partition(":")
    head = head.strip()
    if head == "steady":
        if tail:
            raise ValidationError(f"'steady' takes no station, got {spec!r}")
        return "steady", None
    if head in ("loaded", "burst"):
        return head, _station_index(network, tail)
    raise ValidationError(
        f"unknown pi0 spec {spec!r}; use 'loaded:<station>', "
        "'burst:<station>', or 'steady'"
    )


def _phase_product_law(network: Network, space: NetworkStateSpace) -> np.ndarray:
    """Independent time-stationary phase law over the joint phase codes."""
    probs = np.ones(space.n_phase)
    digits = space.phase_digits
    for j, st in enumerate(network.stations):
        theta = np.asarray(st.service.phase_stationary, dtype=float)
        probs *= theta[digits[:, j]]
    return probs / probs.sum()


def initial_distribution(
    network: Network,
    space: NetworkStateSpace,
    spec: str,
    pi_inf: "np.ndarray | None" = None,
) -> np.ndarray:
    """Compile a pi0 spec into a distribution over ``space``.

    Parameters
    ----------
    network:
        The closed network (must match ``space``).
    space:
        Joint (population, phase) state space.
    spec:
        A spec string (module docstring); raw probability vectors are the
        engine's business, not this compiler's.
    pi_inf:
        Stationary distribution over ``space`` — required by the
        ``"burst:*"`` and ``"steady"`` specs, ignored otherwise.
    """
    kind, station = parse_pi0_spec(network, spec)

    if kind == "steady":
        if pi_inf is None:
            raise ValidationError("'steady' pi0 requires the stationary solution")
        return np.asarray(pi_inf, dtype=float).copy()

    if kind == "loaded":
        pops = np.zeros(network.n_stations, dtype=np.int64)
        pops[station] = network.population
        # Flat index of (all jobs here, phase code 0): the block of the
        # loaded composition starts there and spans the phase codes.
        base = space.encode(pops, np.zeros(network.n_stations, dtype=np.int64))
        pi0 = np.zeros(space.size)
        pi0[base : base + space.n_phase] = _phase_product_law(network, space)
        return pi0

    # kind == "burst": condition the stationary law on the bursty phase.
    if pi_inf is None:
        raise ValidationError(
            "'burst:*' pi0 requires the stationary solution to condition on"
        )
    service = network.stations[station].service
    if service.order < 2:
        raise ValidationError(
            f"station {network.stations[station].name!r} has a single-phase "
            "service process: there is no bursty phase to condition on"
        )
    phase = bursty_phase(service, role="service")
    codes = space.phases_with(station, phase)
    mask = np.zeros(space.size, dtype=bool)
    mask.reshape(space.comp.size, space.n_phase)[:, codes] = True
    pi0 = np.where(mask, np.asarray(pi_inf, dtype=float), 0.0)
    mass = pi0.sum()
    if mass < MIN_CONDITIONING_MASS:
        raise ValidationError(
            f"stationary probability of the bursty phase at station "
            f"{network.stations[station].name!r} is {mass:.3g}; the "
            "conditional initial distribution is not well defined"
        )
    return pi0 / mass

"""Transient trajectories of closed MAP networks, and metrics on them.

Projects the engine's state-space distributions ``pi(t)`` down to the
station metrics the paper's steady-state machinery reports — per-station
mean queue length ``E[N_k(t)]``, busy probability ``U_k(t)``, departure
rate ``X_k(t)`` — plus the two quantities only a transient analysis can
see: the **distance to stationarity** (total variation ``TV(pi(t),
pi_inf)``, a principled warm-up/mixing-time estimate) and, when the engine
accumulates, the **time-averaged occupancy** ``(1/t) integral_0^t E[N_k]``.

The scalar summaries (:func:`time_to_drain_from`, :func:`warmup_time_from`)
work on plain ``(times, series)`` arrays so they apply equally to a fresh
:class:`TransientTrajectory`, a cache-replayed
:class:`~repro.transient.result.TransientResult`, and simulated
trajectories from :mod:`repro.transient.validation`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.ctmc import steady_state_ctmc
from repro.markov.uniformization import DEFAULT_SERIES_TOL, UniformizedOperator
from repro.network.exact import OPERATOR_MAX_STATES, build_generator
from repro.network.kron import kronecker_generator
from repro.network.model import Network, require_closed
from repro.network.statespace import (
    NetworkStateSpace,
    StateSpaceCache,
    expected_state_count,
)
from repro.transient.engine import transient_grid
from repro.transient.initial import initial_distribution

__all__ = [
    "TransientTrajectory",
    "time_to_drain_from",
    "transient_trajectories",
    "warmup_time_from",
]

#: Default relaxation fraction: "drained" means the excess over the
#: stationary mean has decayed to 5% of its initial value.
DRAIN_RELAXATION = 0.05

#: Default total-variation threshold for the warm-up (mixing) estimate.
WARMUP_TV_EPS = 0.01


def _first_crossing(times: np.ndarray, series: np.ndarray, level: float) -> float:
    """First time ``series`` falls to ``level``, linearly interpolated.

    ``nan`` when the series never reaches the level on the grid.  The
    series need not be monotone; the *first* downward crossing wins.
    """
    below = series <= level
    if not below.any():
        return float("nan")
    i = int(np.argmax(below))
    if i == 0:
        return float(times[0])
    t0, t1 = times[i - 1], times[i]
    y0, y1 = series[i - 1], series[i]
    if y0 == y1:
        return float(t1)
    return float(t0 + (y0 - level) / (y0 - y1) * (t1 - t0))


def time_to_drain_from(
    times: np.ndarray,
    queue_length: np.ndarray,
    stationary_mean: float,
    relaxation: float = DRAIN_RELAXATION,
) -> float:
    """Time until a backlog has relaxed toward its stationary mean.

    Defined as the first (interpolated) time where the *excess*
    ``E[N(t)] - E[N(inf)]`` has decayed to ``relaxation`` times its
    initial value.  Returns ``0.0`` when the trajectory starts at (or
    below) the target and ``nan`` when the grid ends before draining.
    """
    times = np.asarray(times, dtype=float)
    q = np.asarray(queue_length, dtype=float)
    excess0 = q[0] - stationary_mean
    if excess0 <= 0.0:
        return 0.0
    return _first_crossing(times, q, stationary_mean + relaxation * excess0)


def warmup_time_from(
    times: np.ndarray, distance_tv: np.ndarray, eps: float = WARMUP_TV_EPS
) -> float:
    """First (interpolated) time the TV distance to stationarity is <= eps.

    The principled warm-up estimate: sampling any functional after this
    time is within ``eps`` of its stationary expectation.  ``nan`` when
    the grid ends before mixing.
    """
    return _first_crossing(
        np.asarray(times, dtype=float), np.asarray(distance_tv, dtype=float), eps
    )


@dataclass(frozen=True)
class TransientTrajectory:
    """Station-metric trajectories of one transient solve.

    Trajectory arrays are ``(n_times, M)``; the ``*_inf`` arrays hold the
    stationary (``t -> inf``) reference values computed from the same
    generator, so limits are comparable bit-for-bit with
    :func:`repro.network.exact.solve_exact`.
    """

    network: Network
    pi0_spec: str
    times: np.ndarray
    queue_length: np.ndarray
    utilization: np.ndarray
    throughput: np.ndarray
    distance_tv: np.ndarray
    queue_length_inf: np.ndarray
    utilization_inf: np.ndarray
    throughput_inf: np.ndarray
    #: Time-averaged occupancy ``(1/t) integral_0^t E[N_k(s)] ds`` (row of
    #: the t=0 point is the instantaneous value); None unless accumulated.
    mean_occupancy: "np.ndarray | None"
    #: Engine statistics (method, n_matvecs, n_segments, q, n_states).
    stats: dict

    def time_to_drain(
        self, station: int, relaxation: float = DRAIN_RELAXATION
    ) -> float:
        """Relaxation time of station ``station``'s mean queue length."""
        return time_to_drain_from(
            self.times,
            self.queue_length[:, station],
            float(self.queue_length_inf[station]),
            relaxation,
        )

    def warmup_time(self, eps: float = WARMUP_TV_EPS) -> float:
        """Mixing-time estimate: first time ``TV(pi(t), pi_inf) <= eps``."""
        return warmup_time_from(self.times, self.distance_tv, eps)


def _metric_weights(
    network: Network, space: NetworkStateSpace
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-station projection vectors over the flat state space.

    Returns ``(W_qlen, W_util, W_thr)``, each ``(S, M)``, so trajectories
    are single matmuls ``pis @ W`` over the whole grid.
    """
    comps = space.comp.states  # (Sc, M)
    M = network.n_stations
    S = space.size
    n_phase = space.n_phase
    W_qlen = np.empty((S, M))
    W_util = np.empty((S, M))
    W_thr = np.empty((S, M))
    digits = space.phase_digits
    for k, st in enumerate(network.stations):
        d1_by_phase = st.service.D1.sum(axis=1)[digits[:, k]]  # (n_phase,)
        scale = st.rate_scale(comps[:, k])  # (Sc,) — zero at n_k = 0
        W_qlen[:, k] = np.repeat(comps[:, k].astype(float), n_phase)
        W_util[:, k] = np.repeat((comps[:, k] >= 1).astype(float), n_phase)
        W_thr[:, k] = (scale[:, None] * d1_by_phase[None, :]).ravel()
    return W_qlen, W_util, W_thr


def transient_trajectories(
    network: Network,
    times,
    pi0: str = "loaded:0",
    tol: float = DEFAULT_SERIES_TOL,
    engine: str = "auto",
    accumulate: bool = False,
    space: "NetworkStateSpace | None" = None,
    statespace_cache: "StateSpaceCache | None" = None,
    max_states: int = 2_000_000,
    backend: str = "dense",
    operator_max_states: int = OPERATOR_MAX_STATES,
) -> TransientTrajectory:
    """Solve the network's transient CTMC and project station metrics.

    Parameters
    ----------
    network:
        The closed MAP network.
    times:
        Time grid (any order; trajectories come back in the given order).
    pi0:
        Initial-state spec string (see :mod:`repro.transient.initial`).
    tol:
        Poisson-series truncation tolerance.
    engine:
        ``"auto"``, ``"uniformization"``, or ``"expm"`` — forwarded to
        :func:`repro.transient.engine.transient_grid`.
    accumulate:
        Also produce time-averaged occupancies (uniformization only).
    space:
        Optional prebuilt state space for this network.
    statespace_cache:
        Optional :class:`~repro.network.statespace.StateSpaceCache` used
        to assemble the space when ``space`` is not given.
    max_states:
        Guard rail of the dense backend against enumerating/assembling a
        prohibitive joint space.
    backend:
        ``"dense"`` (assemble the sparse generator; the default),
        ``"operator"`` (matrix-free Kronecker generator: the stationary
        reference solves via Krylov and the uniformization sweep runs
        through the operator, with ``Q`` never built), or ``"auto"``
        (dense within ``max_states``, operator beyond).
    operator_max_states:
        Guard rail of the operator backend.
    """
    require_closed(network, "transient")
    if backend not in ("auto", "dense", "operator"):
        raise ValueError(f"unknown backend {backend!r}")
    expected = expected_state_count(network) if space is None else space.size
    if backend == "auto":
        backend = "dense" if expected <= max_states else "operator"
    limit = max_states if backend == "dense" else operator_max_states
    if space is None:
        if expected > limit:
            raise MemoryError(
                f"state space has {expected} states (> max_states="
                f"{limit}); transient analysis needs the full CTMC — "
                "use simulation (repro.transient.validation) instead"
            )
        space = (
            statespace_cache.space_for(network)
            if statespace_cache is not None
            else NetworkStateSpace(network)
        )
    elif space.size > limit:
        raise MemoryError(
            f"state space has {space.size} states (> max_states={limit}); "
            "transient analysis needs the full CTMC — use simulation "
            "(repro.transient.validation) instead"
        )
    if backend == "operator":
        Q = kronecker_generator(network, space)
        pi_inf = steady_state_ctmc(Q, method="operator")
    else:
        Q = build_generator(network, space)
        pi_inf = steady_state_ctmc(Q)
    pi0_vec = initial_distribution(network, space, pi0, pi_inf=pi_inf)
    operator = UniformizedOperator(Q)
    grid = transient_grid(
        Q,
        pi0_vec,
        times,
        tol=tol,
        accumulate=accumulate,
        method=engine,
        operator=operator,
    )

    W_qlen, W_util, W_thr = _metric_weights(network, space)
    pis = grid.distributions
    occupancy = None
    if grid.integrals is not None:
        t = grid.times
        with np.errstate(invalid="ignore", divide="ignore"):
            occupancy = (grid.integrals @ W_qlen) / t[:, None]
        # The t = 0 average is the instantaneous value, not 0/0.
        occupancy[t == 0.0] = (pis @ W_qlen)[t == 0.0]
    return TransientTrajectory(
        network=network,
        pi0_spec=pi0,
        times=grid.times,
        queue_length=pis @ W_qlen,
        utilization=pis @ W_util,
        throughput=pis @ W_thr,
        distance_tv=0.5 * np.abs(pis - pi_inf[None, :]).sum(axis=1),
        queue_length_inf=pi_inf @ W_qlen,
        utilization_inf=pi_inf @ W_util,
        throughput_inf=pi_inf @ W_thr,
        mean_occupancy=occupancy,
        stats={
            "engine": grid.method,
            "backend": backend,
            "n_matvecs": grid.n_matvecs,
            "n_segments": grid.n_segments,
            "q": grid.q,
            "n_states": int(space.size),
        },
    )

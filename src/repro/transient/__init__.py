"""repro.transient — transient analysis of MAP queueing networks.

Everything the repository solved before this subsystem was steady-state;
the paper's signature phenomenon — temporal dependence — is, however,
*dynamic*: bursts propagate, backlogs drain, warm-ups decay.  This package
makes those visible:

* :mod:`~repro.transient.engine` — a vectorized multi-time-point
  uniformization kernel (one Poisson sweep per checkpointed segment,
  shared across the whole time grid; accumulated occupancy;
  ``expm_multiply`` fallback) generalizing
  :func:`repro.markov.transient_distribution`;
* :mod:`~repro.transient.initial` — the declarative initial-state spec
  language (``loaded:<station>``, ``burst:<station>``, ``steady``);
* :mod:`~repro.transient.metrics` — trajectories of ``E[N_k(t)]``,
  ``U_k(t)``, ``X_k(t)`` over the closed-network CTMC plus time-to-drain,
  burst-response, and distance-to-stationarity (warm-up) summaries;
* :mod:`~repro.transient.result` — :class:`TransientResult`, the
  cache-round-tripping registry output;
* :mod:`~repro.transient.validation` — ensemble-averaged simulation
  cross-checks of every analytic trajectory.

Quickstart::

    from repro import runtime, scenarios
    net = scenarios.get_scenario("drain-bursty-tandem").network(population=20)
    res = runtime.solve(net, method="transient",
                        times=tuple(range(0, 101, 4)), pi0="loaded:q1")
    res.queue_length_trajectory(0), res.time_to_drain(0), res.warmup_time()
"""

from repro.transient.engine import TransientGrid, transient_grid
from repro.transient.initial import initial_distribution, parse_pi0_spec
from repro.transient.metrics import (
    TransientTrajectory,
    time_to_drain_from,
    transient_trajectories,
    warmup_time_from,
)
from repro.transient.result import TransientResult
from repro.transient.validation import (
    SimulatedTrajectory,
    cross_check_gap,
    simulated_trajectories,
)

__all__ = [
    "SimulatedTrajectory",
    "TransientGrid",
    "TransientResult",
    "TransientTrajectory",
    "cross_check_gap",
    "initial_distribution",
    "parse_pi0_spec",
    "simulated_trajectories",
    "time_to_drain_from",
    "transient_grid",
    "transient_trajectories",
    "warmup_time_from",
]

"""The registry adapter: ``solve(network, method="transient", ...)``.

Lives here (not in :mod:`repro.runtime.registry`) so the import graph
stays acyclic: :class:`~repro.transient.result.TransientResult` extends
``SolveResult`` from the registry module, and the registry pulls this
adapter in lazily when a :class:`~repro.runtime.registry.SolverRegistry`
is instantiated.

Option surface (all canonically fingerprintable, so transient solves
round-trip the two-tier cache like every other method):

``times``
    The grid, a tuple of floats; ``None`` derives a default 33-point
    linear grid over ``[0, 8 N D_max]`` (eight bottleneck drain scales).
``pi0``
    Initial-state spec string (:mod:`repro.transient.initial`).
``accumulate``
    Also report time-averaged occupancies.
``engine``
    ``auto`` / ``uniformization`` / ``expm`` kernel selection.
``backend``
    ``auto`` / ``dense`` / ``operator`` generator representation.  Not
    part of the fingerprint: the answers are backend-invariant, so dense
    and operator solves of one model share a cache entry.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import Interval
from repro.markov.uniformization import DEFAULT_SERIES_TOL
from repro.network.model import Network, require_closed
from repro.network.statespace import StateSpaceCache
from repro.transient.metrics import transient_trajectories
from repro.transient.result import TransientResult

__all__ = ["default_time_grid", "solve_transient"]

#: Points in the derived default grid.
DEFAULT_GRID_POINTS = 33

#: Default horizon in units of ``N * D_max`` (population times bottleneck
#: demand, the asymptotic time to push every job once through the
#: bottleneck).  Eight drain scales: burstiness and near-balanced demands
#: stretch relaxation well past the fluid estimate, and a too-long tail
#: costs little (the Poisson sweep is shared across the grid anyway).
DEFAULT_HORIZON_DRAIN_SCALES = 8.0


def _pt(value: float) -> Interval:
    value = float(value)
    return Interval(lower=value, upper=value)


def default_time_grid(network: Network) -> tuple[float, ...]:
    """The grid used when a transient solve names no times.

    Linear over ``[0, 8 N D_max]``: long enough that a fully backlogged
    bottleneck drains and the chain is near stationarity at the tail,
    dense enough that drain/warm-up crossings interpolate cleanly.
    """
    demands = np.asarray(network.service_demands, dtype=float)
    queue = [
        float(demands[k])
        for k, st in enumerate(network.stations)
        if st.kind != "delay"
    ]
    d_max = max(queue) if queue else float(demands.max())
    horizon = DEFAULT_HORIZON_DRAIN_SCALES * network.population * d_max
    return tuple(
        float(t) for t in np.linspace(0.0, horizon, DEFAULT_GRID_POINTS)
    )


#: Process-wide state-space component cache (mirrors the exact adapter's:
#: repeated transient solves over one topology re-enumerate nothing).
_statespace_cache = StateSpaceCache()


def solve_transient(
    network: Network,
    times=None,
    pi0: str = "loaded:0",
    reference: int = 0,
    tol: float = DEFAULT_SERIES_TOL,
    engine: str = "auto",
    accumulate: bool = False,
    max_states: int = 2_000_000,
    backend: str = "auto",
) -> TransientResult:
    """Adapter behind ``registry.solve(network, method="transient", ...)``.

    ``backend="auto"`` dispatches networks past the ``max_states`` guard
    to the matrix-free operator path instead of raising; the answers are
    backend-invariant, so ``backend`` is provenance (not part of the cache
    fingerprint or the result payload).
    """
    require_closed(network, "transient")
    grid = default_time_grid(network) if times is None else tuple(
        float(t) for t in times
    )
    traj = transient_trajectories(
        network,
        grid,
        pi0=pi0,
        tol=tol,
        engine=engine,
        accumulate=accumulate,
        statespace_cache=_statespace_cache,
        max_states=max_states,
        backend=backend,
    )
    M = network.n_stations
    latest = int(np.argmax(traj.times))  # grids keep the caller's order
    x_ref = float(traj.throughput[latest, reference])
    extra = {
        "pi0": pi0,
        "queue_length_inf": [float(v) for v in traj.queue_length_inf],
        "utilization_inf": [float(v) for v in traj.utilization_inf],
        "throughput_inf": [float(v) for v in traj.throughput_inf],
        # None (not NaN) when the grid ends before mixing: the payload
        # stays valid for strict JSON consumers of the disk cache.
        "warmup_time_tv01": (
            float(traj.warmup_time()) if np.isfinite(traj.warmup_time()) else None
        ),
        **traj.stats,
    }
    return TransientResult(
        method="transient",
        station_names=tuple(st.name for st in network.stations),
        population=network.population,
        utilization=tuple(_pt(traj.utilization[latest, k]) for k in range(M)),
        throughput=tuple(_pt(traj.throughput[latest, k]) for k in range(M)),
        queue_length=tuple(_pt(traj.queue_length[latest, k]) for k in range(M)),
        system_throughput=_pt(x_ref),
        response_time=_pt(network.population / x_ref) if x_ref > 0 else None,
        extra=extra,
        times=tuple(float(t) for t in traj.times),
        queue_length_t=tuple(
            tuple(float(v) for v in traj.queue_length[:, k]) for k in range(M)
        ),
        utilization_t=tuple(
            tuple(float(v) for v in traj.utilization[:, k]) for k in range(M)
        ),
        throughput_t=tuple(
            tuple(float(v) for v in traj.throughput[:, k]) for k in range(M)
        ),
        distance_tv=tuple(float(v) for v in traj.distance_tv),
        mean_occupancy_t=()
        if traj.mean_occupancy is None
        else tuple(
            tuple(float(v) for v in traj.mean_occupancy[:, k]) for k in range(M)
        ),
    )

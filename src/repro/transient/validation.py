"""Simulation cross-checks for transient trajectories.

Every analytic trajectory the subsystem produces can be validated against
the discrete-event simulator: run many independent replications from the
*same* initial-state spec, sample each path's queue lengths on the time
grid through :class:`~repro.sim.taps.QueueTap`, and ensemble-average.
By the law of large numbers the average converges to ``E[N_k(t)]`` — the
exact quantity uniformization computes — so disagreement beyond Monte
Carlo noise is a bug in one of the two engines (this is the transient
analogue of the steady-state "exact vs sim" oracle pair).

Initial states replay the spec faithfully: ``loaded:*`` places every job
deterministically and draws phases from the time-stationary product law;
``burst:*`` and ``steady`` sample each replication's joint start state
from the *analytic* initial distribution (sampling from a distribution is
legitimate here — what is being validated is the dynamics, not pi0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.model import Network, require_closed
from repro.network.statespace import NetworkStateSpace
from repro.sim.engine import simulate
from repro.sim.taps import QueueTap
from repro.transient.initial import initial_distribution, parse_pi0_spec
from repro.utils.rng import as_rng

__all__ = ["SimulatedTrajectory", "cross_check_gap", "simulated_trajectories"]


@dataclass(frozen=True)
class SimulatedTrajectory:
    """Ensemble-averaged simulated queue-length trajectories.

    ``queue_length`` is ``(n_times, M)`` — the Monte Carlo estimate of
    ``E[N_k(t)]`` — and ``queue_length_std`` the per-point ensemble
    standard deviation (of the *paths*, not the mean; divide by
    ``sqrt(replications)`` for the standard error).
    """

    times: np.ndarray
    queue_length: np.ndarray
    queue_length_std: np.ndarray
    replications: int


def _sample_initial(network, space, spec, pi0_vec, rng):
    """Per-replication start state ``(populations, phases)`` for the spec."""
    kind, station = parse_pi0_spec(network, spec)
    if kind == "loaded":
        pops = np.zeros(network.n_stations, dtype=np.int64)
        pops[station] = network.population
        phases = [
            int(rng.choice(st.phases, p=st.service.phase_stationary))
            for st in network.stations
        ]
        return pops, phases
    # burst / steady: draw the joint state from the analytic pi0.
    cdf = np.cumsum(pi0_vec)
    idx = int(np.searchsorted(cdf, rng.random() * cdf[-1], side="right"))
    pops, phases = space.decode(min(idx, space.size - 1))
    return pops, [int(p) for p in phases]


def simulated_trajectories(
    network: Network,
    times,
    pi0: str = "loaded:0",
    replications: int = 200,
    rng=None,
    space: "NetworkStateSpace | None" = None,
    pi_inf: "np.ndarray | None" = None,
) -> SimulatedTrajectory:
    """Ensemble-averaged ``E[N_k(t)]`` estimates from the simulator.

    Parameters
    ----------
    network:
        The closed network (the transient subsystem's domain).
    times:
        Time grid to sample the paths on.
    pi0:
        Initial-state spec (same language as the analytic side).
    replications:
        Independent paths to average.
    rng:
        Seed / generator for reproducibility.
    space:
        Prebuilt state space (required only by ``burst:*``/``steady``
        specs, which sample joint start states from the analytic pi0).
    pi_inf:
        Stationary distribution, forwarded to
        :func:`repro.transient.initial.initial_distribution` for specs
        that condition on it.
    """
    require_closed(network, "transient validation")
    t = np.asarray(times, dtype=float)
    if t.ndim != 1 or t.size == 0 or np.any(t < 0):
        raise ValueError("times must be a non-empty 1-D grid of t >= 0")
    gen = as_rng(rng)
    M = network.n_stations
    kind, _ = parse_pi0_spec(network, pi0)
    pi0_vec = None
    if kind != "loaded":
        if space is None:
            space = NetworkStateSpace(network)
        pi0_vec = initial_distribution(network, space, pi0, pi_inf=pi_inf)
    horizon = float(t.max()) if t.max() > 0 else None

    samples = np.empty((replications, len(t), M))
    for r in range(replications):
        pops, phases = _sample_initial(network, space, pi0, pi0_vec, gen)
        taps = [QueueTap(k) for k in range(M)]
        simulate(
            network,
            horizon_events=np.iinfo(np.int64).max if horizon else 1,
            warmup_events=0,
            rng=gen,
            taps=taps,
            horizon_time=horizon,
            initial_populations=pops,
            initial_phases=phases,
        )
        for k in range(M):
            samples[r, :, k] = taps[k].value_at(t)
    return SimulatedTrajectory(
        times=t,
        queue_length=samples.mean(axis=0),
        queue_length_std=samples.std(axis=0, ddof=1) if replications > 1 else
        np.zeros((len(t), M)),
        replications=replications,
    )


def cross_check_gap(
    analytic_queue_length, simulated_queue_length, floor: float = 0.5
) -> float:
    """Worst relative disagreement between two ``(n_times, M)`` trajectories.

    Per station, gaps are normalized by the analytic trajectory's running
    scale ``max(max_t |E[N_k(t)]|, floor)`` so near-empty queues do not
    blow up a ratio; the return value is the maximum over all stations and
    grid points — the quantity smoke gates hold under 5%.
    """
    a = np.asarray(analytic_queue_length, dtype=float)
    s = np.asarray(simulated_queue_length, dtype=float)
    if a.shape != s.shape:
        raise ValueError(f"trajectory shapes differ: {a.shape} vs {s.shape}")
    scale = np.maximum(np.abs(a).max(axis=0, keepdims=True), floor)
    return float((np.abs(a - s) / scale).max())

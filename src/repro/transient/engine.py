"""Vectorized multi-time-point uniformization: the transient engine.

Generalizes :func:`repro.markov.uniformization.transient_distribution`
from one ``(pi0, t)`` call into a kernel over a whole time grid:

* **one Poisson-series sweep per segment** — the vector iterates
  ``pi0, pi0 P, pi0 P^2, ...`` are computed once and every grid point in
  the segment accumulates them under its own Poisson weights, so a
  50-point grid costs ``O(q t_max)`` sparse matvecs instead of
  ``O(q * sum_i t_i)``;
* **checkpointed restarts** — when the largest offset in flight would need
  more than :data:`SEGMENT_TERM_BUDGET` series terms, the sweep restarts
  from the last completed grid point's distribution, bounding per-segment
  series length (and the per-term weight-update work) on long grids;
* **accumulated occupancy** — the same sweep optionally produces
  ``L(t) = integral_0^t pi(s) ds`` via the Erlang tail identity
  ``integral_0^t Poisson(k; q s) ds = P[Pois(qt) > k] / q``, giving
  time-averaged occupancies without a second pass;
* **``expm_multiply`` fallback** — Krylov-based matrix exponentials for
  generators whose uniformization rate makes the Poisson series
  impractically long (stiff models), selected explicitly or on a
  :class:`~repro.utils.errors.SeriesTruncationError` under ``method="auto"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import obs
from repro.markov.uniformization import (
    DEFAULT_SERIES_TOL,
    UniformizedOperator,
    max_series_terms,
    series_shortfall_allowance,
    validate_pi0,
)
from repro.utils.errors import NotSupportedError, SeriesTruncationError

__all__ = ["SEGMENT_TERM_BUDGET", "TransientGrid", "transient_grid"]

#: Poisson-term budget per checkpointed segment.  Segments restart from the
#: last completed grid point once the next point's series would exceed this
#: many terms; large enough that typical grids run in one sweep, small
#: enough that the per-term weight updates (O(points-in-segment) each)
#: never dominate the sparse matvecs.
SEGMENT_TERM_BUDGET = 20_000


@dataclass(frozen=True)
class TransientGrid:
    """Transient distributions (and optional running integrals) on a grid.

    Attributes
    ----------
    times:
        The requested time points, in the caller's order.
    distributions:
        ``(len(times), S)`` array; row ``i`` is ``pi(times[i])``.
    integrals:
        ``(len(times), S)`` array of ``integral_0^t pi(s) ds`` rows, or
        ``None`` unless ``accumulate=True``.  Row sums equal ``times[i]``
        (total occupancy time is conserved).
    q:
        Uniformization rate used (0.0 on the ``expm`` path).
    n_matvecs:
        Sparse matrix-vector products spent — the deterministic cost
        measure the reuse benchmark gates on.
    n_segments:
        Number of checkpointed sweep segments (1 unless the grid was long
        enough to trip :data:`SEGMENT_TERM_BUDGET`).
    method:
        ``"uniformization"`` or ``"expm"`` — the kernel that actually ran.
    """

    times: np.ndarray
    distributions: np.ndarray
    integrals: "np.ndarray | None"
    q: float
    n_matvecs: int
    n_segments: int
    method: str

    def distribution_at(self, i: int) -> np.ndarray:
        """Row ``i`` of :attr:`distributions` (convenience accessor)."""
        return self.distributions[i]


def _validated_times(times) -> np.ndarray:
    t = np.asarray(times, dtype=float)
    if t.ndim != 1 or t.size == 0:
        raise ValueError("times must be a non-empty 1-D sequence")
    if np.any(t < 0) or not np.all(np.isfinite(t)):
        raise ValueError("times must be finite and >= 0")
    return t


def _sweep_segment(
    op: UniformizedOperator,
    start_vec: np.ndarray,
    offsets: np.ndarray,
    tol: float,
    accumulate: bool,
) -> tuple[np.ndarray, "np.ndarray | None", int, int]:
    """One shared Poisson sweep over ascending ``offsets`` from ``start_vec``.

    Returns ``(points, point_integrals, n_matvecs, n_terms)`` where
    ``points`` is ``(len(offsets), S)`` and ``point_integrals`` the
    per-offset ``integral_0^dt`` rows (or ``None``); ``n_terms`` counts
    the Poisson weights applied.  Offsets equal to zero are the start
    vector itself.
    """
    n, S = len(offsets), len(start_vec)
    out = np.zeros((n, S))
    integ = np.zeros((n, S)) if accumulate else None
    qdt = op.q * offsets
    positive = qdt > 0.0
    if not positive.any():
        out[:] = start_vec
        return out, integ, 0, 0

    with np.errstate(divide="ignore"):
        log_qdt = np.where(positive, np.log(np.where(positive, qdt, 1.0)), -np.inf)
    log_w = -qdt  # log Poisson(0; qdt); exact 1.0 weight at dt == 0
    acc = np.zeros(n)
    vec = start_vec.copy()
    k = 0
    matvecs = 0
    terms = 0
    max_terms = max_series_terms(float(qdt.max()))
    active = np.ones(n, dtype=bool)
    while active.any():
        if k > max_terms:
            # The term guard fired with unconverged points.  A shortfall
            # within the float-drift allowance is round-off on a fully
            # swept series (normalize below); anything larger is a real
            # truncation and must surface as the structured error.
            shortfall = 1.0 - acc[active]
            if shortfall.max() > series_shortfall_allowance(tol, k):
                worst = int(np.argmin(acc))
                raise SeriesTruncationError(
                    qt=float(qdt[worst]),
                    terms=k,
                    accumulated=float(acc[worst]),
                    tol=tol,
                )
            break
        w = np.exp(log_w)
        idx = np.nonzero(active)[0]
        out[idx] += w[idx, None] * vec[None, :]
        acc[idx] += w[idx]
        terms += 1
        if accumulate:
            # Erlang tail identity: integral_0^dt Poisson(k; q s) ds
            # = P[Pois(q dt) > k] / q = (1 - acc_after_this_term) / q.
            integ[idx] += (
                np.clip(1.0 - acc[idx], 0.0, None)[:, None] * vec[None, :] / op.q
            )
        active = (1.0 - acc) > series_shortfall_allowance(tol, k)
        if not active.any():
            break
        k += 1
        log_w = log_w + log_qdt - np.log(k)
        vec = op.step(vec)
        matvecs += 1
    # Normalize away the truncated tail (weights sum to acc_i <= 1).
    out /= np.where(acc > 0.0, acc, 1.0)[:, None]
    return out, integ, matvecs, terms


def _grid_uniformization(
    op: UniformizedOperator,
    pi0: np.ndarray,
    times_sorted: np.ndarray,
    tol: float,
    accumulate: bool,
    segment_terms: int,
) -> tuple[np.ndarray, "np.ndarray | None", int, int, int]:
    """Checkpointed shared-sweep evaluation over an ascending time grid."""
    n = len(times_sorted)
    S = len(pi0)
    dists = np.empty((n, S))
    integrals = np.empty((n, S)) if accumulate else None

    if op.q == 0.0:  # Q == 0: the distribution never moves
        dists[:] = pi0
        if accumulate:
            integrals[:] = times_sorted[:, None] * pi0[None, :]
        return dists, integrals, 0, 1, 0

    matvecs = 0
    n_terms = 0
    n_segments = 0
    start = 0
    ckpt_time = 0.0
    ckpt_vec = pi0
    ckpt_integral = np.zeros(S) if accumulate else None
    while start < n:
        # Greedily extend the segment while its largest offset stays
        # within the per-segment term budget (always take one point).
        stop = start + 1
        while (
            stop < n
            and max_series_terms(op.q * (times_sorted[stop] - ckpt_time))
            <= segment_terms
        ):
            stop += 1
        offsets = times_sorted[start:stop] - ckpt_time
        out, integ, mv, nt = _sweep_segment(op, ckpt_vec, offsets, tol, accumulate)
        dists[start:stop] = out
        matvecs += mv
        n_terms += nt
        n_segments += 1
        if accumulate:
            integrals[start:stop] = ckpt_integral[None, :] + integ
            ckpt_integral = integrals[stop - 1]
        ckpt_time = times_sorted[stop - 1]
        ckpt_vec = dists[stop - 1]
        start = stop
    return dists, integrals, matvecs, n_segments, n_terms


def _grid_expm(
    Q: sp.csr_matrix, pi0: np.ndarray, times_sorted: np.ndarray
) -> np.ndarray:
    """Sequential ``expm_multiply`` fallback (point distributions only)."""
    from scipy.sparse.linalg import expm_multiply

    QT = Q.T.tocsc()
    dists = np.empty((len(times_sorted), len(pi0)))
    vec = pi0
    prev = 0.0
    for i, t in enumerate(times_sorted):
        dt = t - prev
        if dt > 0.0:
            vec = expm_multiply(QT * dt, vec)
        dists[i] = vec
        prev = t
    # expm_multiply is not probability-aware: clip round-off and renormalize.
    np.clip(dists, 0.0, None, out=dists)
    dists /= dists.sum(axis=1, keepdims=True)
    return dists


def transient_grid(
    Q: "sp.spmatrix | np.ndarray | spla.LinearOperator",
    pi0: np.ndarray,
    times,
    tol: float = DEFAULT_SERIES_TOL,
    accumulate: bool = False,
    method: str = "auto",
    operator: "UniformizedOperator | None" = None,
    segment_terms: int = SEGMENT_TERM_BUDGET,
) -> TransientGrid:
    """Evaluate ``pi(t) = pi0 exp(Q t)`` on a whole time grid.

    Parameters
    ----------
    Q:
        CTMC generator (rows sum to zero), sparse or dense — or a
        matrix-free :class:`~scipy.sparse.linalg.LinearOperator` with
        ``rmatvec`` and ``diagonal()``, in which case the uniformization
        sweep runs through the operator and the ``expm`` fallback (which
        needs the assembled matrix) is unavailable.
    pi0:
        Initial probability vector.
    times:
        Time points (any order, duplicates allowed); results are returned
        in the given order.
    tol:
        Poisson-series truncation tolerance (weight ``1 - tol``).
    accumulate:
        Also produce the running integrals ``integral_0^t pi(s) ds``
        (time-averaged occupancy numerators).  Uniformization only.
    method:
        ``"uniformization"``, ``"expm"``, or ``"auto"`` (uniformization,
        falling back to ``expm_multiply`` on a
        :class:`~repro.utils.errors.SeriesTruncationError`).
    operator:
        Prebuilt :class:`~repro.markov.uniformization.UniformizedOperator`
        for ``Q`` — callers issuing several grid queries against one
        generator (metric layers, sweeps) pass it to reuse the sparse
        ``P`` assembly.
    segment_terms:
        Per-segment Poisson-term budget before a checkpointed restart.

    Returns
    -------
    TransientGrid
        Distributions (and integrals) in the caller's time order, plus
        engine statistics.
    """
    if method not in ("auto", "uniformization", "expm"):
        raise ValueError(f"unknown transient method {method!r}")
    t_in = _validated_times(times)
    pi0 = validate_pi0(pi0)
    order = np.argsort(t_in, kind="stable")
    t_sorted = t_in[order]
    inverse = np.empty_like(order)
    inverse[order] = np.arange(len(order))

    op = operator if operator is not None else UniformizedOperator(Q)
    if op.size != len(pi0):
        raise ValueError(
            f"pi0 has length {len(pi0)} for a {op.size}-state generator"
        )

    with obs.get_telemetry().span(
        "transient.grid", n_states=int(op.size), n_times=int(len(t_in))
    ) as span:
        if method != "expm":
            try:
                dists, integrals, matvecs, n_segments, n_terms = (
                    _grid_uniformization(
                        op, pi0, t_sorted, tol, accumulate, int(segment_terms)
                    )
                )
                span.set("engine", "uniformization")
                span.count("transient.matvecs", matvecs)
                span.count("transient.segments", n_segments)
                span.count("transient.poisson_terms", n_terms)
                return TransientGrid(
                    times=t_in,
                    distributions=dists[inverse],
                    integrals=None if integrals is None else integrals[inverse],
                    q=op.q,
                    n_matvecs=matvecs,
                    n_segments=n_segments,
                    method="uniformization",
                )
            except SeriesTruncationError:
                if method == "uniformization" or accumulate:
                    raise
                if getattr(op, "matrix_free", False):
                    # expm_multiply needs the assembled matrix; past the
                    # storage wall the structured truncation error is the
                    # honest answer, not a silent densification.
                    raise
        if getattr(op, "matrix_free", False):
            raise NotSupportedError(
                "the expm fallback requires an assembled generator; "
                "matrix-free operators support uniformization only"
            )
        if accumulate:
            raise NotSupportedError(
                "accumulated occupancy requires the uniformization kernel; "
                "the expm fallback computes point distributions only"
            )
        dists = _grid_expm(op.Q, pi0, t_sorted)
        span.set("engine", "expm")
        span.count("transient.segments", len(t_sorted))
        return TransientGrid(
            times=t_in,
            distributions=dists[inverse],
            integrals=None,
            q=0.0,
            n_matvecs=0,
            n_segments=len(t_sorted),
            method="expm",
        )

""":class:`TransientResult` — the registry's transient solve output.

Extends :class:`~repro.runtime.registry.SolveResult` with the time grid and
per-station trajectory arrays, while keeping the uniform steady-style
fields meaningful: the interval fields hold the *final grid time* values
(degenerate intervals, like every point solver), and the stationary
``t -> inf`` references travel in ``extra`` — so generic drivers, sweep
tables, and the CLI render a transient result without special-casing,
and the trajectories round-trip the two-tier JSON cache losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.runtime.registry import SolveResult
from repro.transient.metrics import (
    DRAIN_RELAXATION,
    WARMUP_TV_EPS,
    time_to_drain_from,
    warmup_time_from,
)

__all__ = ["TransientResult"]


@dataclass(frozen=True)
class TransientResult(SolveResult):
    """A :class:`SolveResult` carrying full transient trajectories.

    Trajectory fields are per-station tuples of per-time values (station
    index first, matching ``station_names``); ``times`` is the grid they
    are sampled on.  ``distance_tv`` is the total-variation distance of
    ``pi(t)`` to stationarity — the warm-up/mixing diagnostic.
    """

    times: tuple[float, ...] = ()
    queue_length_t: tuple[tuple[float, ...], ...] = ()
    utilization_t: tuple[tuple[float, ...], ...] = ()
    throughput_t: tuple[tuple[float, ...], ...] = ()
    distance_tv: tuple[float, ...] = ()
    #: Time-averaged occupancies ``(1/t) integral E[N_k]`` (empty unless
    #: the solve accumulated).
    mean_occupancy_t: tuple[tuple[float, ...], ...] = ()

    # ------------------------------------------------------------------ #
    @property
    def times_array(self) -> np.ndarray:
        """The time grid as an array."""
        return np.asarray(self.times, dtype=float)

    def queue_length_trajectory(self, k: int) -> np.ndarray:
        """``E[N_k(t)]`` over the grid."""
        return np.asarray(self.queue_length_t[k], dtype=float)

    def utilization_trajectory(self, k: int) -> np.ndarray:
        """``P[N_k(t) >= 1]`` over the grid."""
        return np.asarray(self.utilization_t[k], dtype=float)

    def throughput_trajectory(self, k: int) -> np.ndarray:
        """Departure rate ``X_k(t)`` over the grid."""
        return np.asarray(self.throughput_t[k], dtype=float)

    @property
    def distance_array(self) -> np.ndarray:
        """``TV(pi(t), pi_inf)`` over the grid."""
        return np.asarray(self.distance_tv, dtype=float)

    def queue_length_stationary(self, k: int) -> float:
        """The ``t -> inf`` mean queue length of station ``k``."""
        return float(self.extra["queue_length_inf"][k])

    def time_to_drain(self, k: int, relaxation: float = DRAIN_RELAXATION) -> float:
        """Relaxation time of station ``k`` (see :mod:`repro.transient.metrics`)."""
        return time_to_drain_from(
            self.times_array,
            self.queue_length_trajectory(k),
            self.queue_length_stationary(k),
            relaxation,
        )

    def warmup_time(self, eps: float = WARMUP_TV_EPS) -> float:
        """Mixing-time estimate: first grid time with TV distance <= eps."""
        return warmup_time_from(self.times_array, self.distance_array, eps)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serializable payload (adds the trajectory block)."""
        payload = super().to_dict()
        payload["times"] = list(self.times)
        payload["queue_length_t"] = [list(row) for row in self.queue_length_t]
        payload["utilization_t"] = [list(row) for row in self.utilization_t]
        payload["throughput_t"] = [list(row) for row in self.throughput_t]
        payload["distance_tv"] = list(self.distance_tv)
        payload["mean_occupancy_t"] = [list(row) for row in self.mean_occupancy_t]
        return payload

    @classmethod
    def from_dict(cls, payload: dict, from_cache: bool = False) -> "TransientResult":
        """Rebuild from a :meth:`to_dict` payload (cache replay)."""
        base = SolveResult.from_dict(payload, from_cache=from_cache)
        base_fields = {f.name: getattr(base, f.name) for f in fields(SolveResult)}
        return cls(
            **base_fields,
            times=tuple(payload["times"]),
            queue_length_t=tuple(tuple(r) for r in payload["queue_length_t"]),
            utilization_t=tuple(tuple(r) for r in payload["utilization_t"]),
            throughput_t=tuple(tuple(r) for r in payload["throughput_t"]),
            distance_tv=tuple(payload["distance_tv"]),
            mean_occupancy_t=tuple(
                tuple(r) for r in payload.get("mean_occupancy_t", [])
            ),
        )

"""Discrete-event simulation of MAP networks (the "testbed" substitute)."""

from repro.sim.engine import SimResult, simulate
from repro.sim.runner import ReplicatedResult, replicate
from repro.sim.taps import FlowTap, QueueTap

__all__ = [
    "SimResult",
    "simulate",
    "ReplicatedResult",
    "replicate",
    "FlowTap",
    "QueueTap",
]

"""Discrete-event simulation engine for closed MAP queueing networks.

The simulator plays the role of the paper's *measurement testbed*: it
implements exactly the semantics of the analytic model (FCFS stations, MAP
service with phase frozen while idle, probabilistic routing) so that the
exact solver, the LP bounds, and "measurements" can be compared on equal
footing, plus it scales to populations where the CTMC is prohibitive.

Design: a binary-heap event calendar holds one service-completion event per
busy server.  Statistics (busy-time/queue-length integrals, completion
counts, per-visit response times) are accumulated lazily per station and
reset once at the warmup boundary.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.maps.trace import MapSampler
from repro.network.model import ClosedNetwork
from repro.sim.taps import FlowTap
from repro.utils.rng import as_rng

__all__ = ["SimResult", "simulate"]


@dataclass
class SimResult:
    """Steady-state estimates from one simulation run.

    All quantities are measured after the warmup boundary.
    """

    network: ClosedNetwork
    duration: float
    completions: np.ndarray
    utilization: np.ndarray
    throughput: np.ndarray
    mean_queue_length: np.ndarray
    response_mean: np.ndarray
    response_samples: "list[np.ndarray]"
    taps: "list[FlowTap]" = field(default_factory=list)

    def system_throughput(self, reference: int = 0) -> float:
        """Completions per unit time at the reference station."""
        return float(self.throughput[reference])

    def response_time(self, reference: int = 0) -> float:
        """Little's-law response time ``N / X_ref``."""
        return self.network.population / self.system_throughput(reference)


class _StationSim:
    """Runtime state of one station."""

    __slots__ = (
        "kind",
        "servers",
        "sampler",
        "phase",
        "rate",
        "waiting",
        "in_service",
        "n",
        "arrival_time",
    )

    def __init__(self, station, rng) -> None:
        self.kind = station.kind
        self.servers = station.servers if station.kind == "multiserver" else (
            np.inf if station.kind == "delay" else 1
        )
        self.n = 0
        self.in_service = 0
        self.waiting: list[int] = []  # FCFS order of jobs not yet in service
        self.arrival_time: dict[int, float] = {}
        if station.kind == "queue":
            self.sampler = MapSampler(station.service)
            self.phase = self.sampler.initial_phase(rng)
            self.rate = 0.0
        else:
            self.sampler = None
            self.phase = 0
            self.rate = float(station.service.D1[0, 0])


def simulate(
    network: ClosedNetwork,
    horizon_events: int = 200_000,
    warmup_events: int = 20_000,
    rng=None,
    taps: "list[FlowTap] | None" = None,
    initial_station: int = 0,
) -> SimResult:
    """Simulate the closed network for a fixed number of completions.

    Parameters
    ----------
    network:
        The model to simulate.
    horizon_events:
        Total service completions to simulate (including warmup).
    warmup_events:
        Completions discarded before statistics (and taps) start.
    rng:
        Seed / generator for reproducibility.
    taps:
        Optional :class:`FlowTap` list recording flow event epochs.
    initial_station:
        Station where all jobs start (queued); the default places them at
        station 0, matching the closed-network convention.
    """
    gen = as_rng(rng)
    M = network.n_stations
    N = network.population
    taps = taps or []
    arr_taps: list[list[FlowTap]] = [[] for _ in range(M)]
    dep_taps: list[list[FlowTap]] = [[] for _ in range(M)]
    for tap in taps:
        (arr_taps if tap.direction == "arrival" else dep_taps)[tap.station].append(tap)

    stations = [_StationSim(st, gen) for st in network.stations]
    routing_cum = np.cumsum(network.routing, axis=1)
    routing_cum[:, -1] = 1.0

    calendar: list[tuple[float, int, int, int]] = []  # (time, seq, station, job)
    seq = 0
    now = 0.0

    # --- statistics accumulators (reset at warmup) ---
    stat_t0 = 0.0
    last_change = np.zeros(M)  # last time station k's n changed
    busy_int = np.zeros(M)
    qlen_int = np.zeros(M)
    completions = np.zeros(M, dtype=np.int64)
    resp: list[list[float]] = [[] for _ in range(M)]
    collecting = warmup_events == 0

    def _flush(k: int) -> None:
        """Bring station k's integrals up to `now`."""
        dt = now - last_change[k]
        if dt > 0.0:
            st = stations[k]
            qlen_int[k] += st.n * dt
            if st.n >= 1:
                busy_int[k] += dt
        last_change[k] = now

    def _start_service(k: int) -> None:
        """Start jobs at station k while servers are free (FCFS)."""
        nonlocal seq
        st = stations[k]
        while st.waiting and st.in_service < st.servers:
            job = st.waiting.pop(0)
            st.in_service += 1
            if st.sampler is not None:
                interval, new_phase = st.sampler.sample_one(st.phase, gen)
                st.phase = new_phase  # phase after this completion
            else:
                interval = gen.exponential(1.0 / st.rate)
            seq += 1
            heapq.heappush(calendar, (now + interval, seq, k, job))

    def _arrive(k: int, job: int) -> None:
        st = stations[k]
        _flush(k)
        st.n += 1
        st.waiting.append(job)
        if collecting:
            st.arrival_time[job] = now
            for tap in arr_taps[k]:
                tap.record(now)
        _start_service(k)

    # Initial placement: all jobs at `initial_station`.
    for job in range(N):
        _arrive(initial_station, job)

    total_completions = 0
    while total_completions < horizon_events:
        if not calendar:
            raise RuntimeError("event calendar ran dry (no busy stations)")
        now, _, j, job = heapq.heappop(calendar)
        st = stations[j]
        _flush(j)
        st.n -= 1
        st.in_service -= 1
        total_completions += 1
        if collecting:
            completions[j] += 1
            t_arr = st.arrival_time.pop(job, None)
            if t_arr is not None:
                resp[j].append(now - t_arr)
            for tap in dep_taps[j]:
                tap.record(now)
        _start_service(j)

        # Route the job.
        u = gen.random()
        k = int(np.searchsorted(routing_cum[j], u, side="right"))
        _arrive(k, job)

        if not collecting and total_completions >= warmup_events:
            # Warmup boundary: reset all statistics, keep the system state.
            collecting = True
            stat_t0 = now
            last_change[:] = now
            busy_int[:] = 0.0
            qlen_int[:] = 0.0
            completions[:] = 0
            for k2 in range(M):
                resp[k2].clear()
                stations[k2].arrival_time.clear()
            for tap in taps:
                tap.reset()

    # Final flush to the last event time.
    for k in range(M):
        _flush(k)
    duration = now - stat_t0
    if duration <= 0.0:
        raise RuntimeError("simulation horizon too short: zero measured duration")
    response_samples = [np.asarray(r) for r in resp]
    response_mean = np.array(
        [float(r.mean()) if r.size else np.nan for r in response_samples]
    )
    return SimResult(
        network=network,
        duration=duration,
        completions=completions,
        utilization=busy_int / duration,
        throughput=completions / duration,
        mean_queue_length=qlen_int / duration,
        response_mean=response_mean,
        response_samples=response_samples,
        taps=taps,
    )

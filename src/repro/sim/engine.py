"""Discrete-event simulation engine for MAP queueing networks.

The simulator plays the role of the paper's *measurement testbed*: it
implements exactly the semantics of the analytic model (FCFS stations, MAP
service with phase frozen while idle, probabilistic routing) so that the
exact solver, the LP bounds, and "measurements" can be compared on equal
footing, plus it scales to populations where the CTMC is prohibitive.

All three network kinds simulate through the same event loop:

* **closed** — ``N`` jobs circulate forever (the pre-redesign behavior);
* **open** — an external MAP arrival stream injects jobs at the entry
  distribution; routing rows are substochastic and the deficit routes a
  job out of the system (the sink);
* **mixed** — both at once; closed jobs route by ``network.routing`` and
  open jobs by ``network.open_routing`` (job identity decides the class).

Design: a binary-heap event calendar holds one service-completion event per
busy server plus, for open chains, the single pending external-arrival
event.  Statistics (busy-time/queue-length integrals, completion counts,
per-visit response times) are accumulated lazily per station and reset once
at the warmup boundary.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.maps.trace import MapSampler
from repro.network.model import Network
from repro.sim.taps import FlowTap, QueueTap
from repro.utils.rng import as_rng

__all__ = ["SimResult", "simulate"]

#: Calendar marker for external-arrival events (not a station index).
_ARRIVAL = -1


@dataclass
class SimResult:
    """Steady-state estimates from one simulation run.

    All quantities are measured after the warmup boundary.  Open-chain
    extras (``sink_departures``, ``external_arrivals``) stay zero for
    closed networks.
    """

    network: Network
    duration: float
    completions: np.ndarray
    utilization: np.ndarray
    throughput: np.ndarray
    mean_queue_length: np.ndarray
    response_mean: np.ndarray
    response_samples: "list[np.ndarray]"
    taps: "list[FlowTap]" = field(default_factory=list)
    sink_departures: int = 0
    external_arrivals: int = 0
    #: Per-station mean count of *open-chain* jobs (None for closed runs;
    #: equals mean_queue_length for pure open runs).
    mean_queue_length_open: "np.ndarray | None" = None
    #: Per-station completion counts of *open-chain* jobs (None for closed
    #: runs); closed-chain completions are ``completions - completions_open``.
    completions_open: "np.ndarray | None" = None
    #: Total calendar events processed (arrivals + completions, including
    #: warmup) — the denominator of the event-loop rate.
    n_events: int = 0

    def system_throughput(self, reference: int = 0) -> float:
        """System-level flow rate of the *primary* chain.

        Closed networks report completions per unit time at the reference
        station (the paper's convention); mixed networks count only the
        closed chain's completions there, so open-chain traffic through
        the reference station never inflates the closed cycle rate.  A
        pure open network reports the sink departure rate, which equals
        the external arrival rate in steady state.
        """
        if self.network.kind == "open":
            return float(self.sink_departures) / self.duration
        if self.network.kind == "mixed":
            closed_completions = (
                self.completions[reference] - self.completions_open[reference]
            )
            return float(closed_completions) / self.duration
        return float(self.throughput[reference])

    def response_time(self, reference: int = 0) -> float:
        """Mean time in system per job of the *primary* chain.

        Closed and mixed: Little's-law response time of the closed chain,
        ``N / X_ref`` with ``X_ref`` the closed chain's own completion
        rate (for mixed networks the open class has its own metric,
        :meth:`open_response_time`, since the two chains have different
        flows).  Open: Little's law on the measured totals,
        ``E[jobs in system] / X``.  ``nan`` when the relevant flow saw no
        completions (horizon too short).
        """
        if self.network.kind != "open":
            x = self.system_throughput(reference)
            if x <= 0.0:
                return float("nan")
            return self.network.population / x
        x = self.system_throughput(reference)
        if x <= 0.0:
            return float("nan")
        return float(self.mean_queue_length.sum()) / x

    def open_response_time(self) -> float:
        """Open-chain time in system, ``E[open jobs] / sink rate`` (Little).

        Defined for open and mixed runs; for pure open runs this equals
        :meth:`response_time`.  Returns ``nan`` when the run observed no
        sink departures (a too-short horizon relative to the arrival
        rate), never a division error.
        """
        if self.mean_queue_length_open is None:
            raise ValueError("closed simulation has no open chain")
        if self.sink_departures <= 0:
            return float("nan")
        sink_rate = self.sink_departures / self.duration
        return float(self.mean_queue_length_open.sum()) / sink_rate


class _StationSim:
    """Runtime state of one station."""

    __slots__ = (
        "kind",
        "servers",
        "sampler",
        "phase",
        "rate",
        "waiting",
        "in_service",
        "n",
        "n_open",
        "arrival_time",
    )

    def __init__(self, station, rng) -> None:
        self.kind = station.kind
        self.servers = station.servers if station.kind == "multiserver" else (
            np.inf if station.kind == "delay" else 1
        )
        self.n = 0
        self.n_open = 0
        self.in_service = 0
        self.waiting: list[int] = []  # FCFS order of jobs not yet in service
        self.arrival_time: dict[int, float] = {}
        if station.kind == "queue":
            self.sampler = MapSampler(station.service)
            self.phase = self.sampler.initial_phase(rng)
            self.rate = 0.0
        else:
            self.sampler = None
            self.phase = 0
            self.rate = float(station.service.D1[0, 0])


def _routing_cum(P: np.ndarray, open_chain: bool) -> np.ndarray:
    """Cumulative routing rows; open rows gain a terminal sink column.

    Closed rows are forced to end at 1 over the last *station* (guarding
    against float drift); open rows end at 1 over the appended sink column,
    so a uniform draw beyond the internal mass routes the job out.
    """
    M = P.shape[0]
    if not open_chain:
        cum = np.cumsum(P, axis=1)
        cum[:, -1] = 1.0
        return cum
    cum = np.cumsum(np.hstack([P, np.zeros((M, 1))]), axis=1)
    cum[:, -1] = 1.0
    return cum


def simulate(
    network: Network,
    horizon_events: int = 200_000,
    warmup_events: int = 20_000,
    rng=None,
    taps: "list[FlowTap | QueueTap] | None" = None,
    initial_station: int = 0,
    horizon_time: "float | None" = None,
    initial_populations=None,
    initial_phases=None,
) -> SimResult:
    """Simulate the network for a fixed number of service completions.

    When telemetry is enabled (:mod:`repro.obs`) the run executes under a
    ``sim.run`` span recording processed-event / external-arrival /
    sink-departure counters and the achieved event-loop rate.

    Parameters
    ----------
    network:
        The model to simulate (closed, open, or mixed).
    horizon_events:
        Total service completions to simulate (including warmup).
    warmup_events:
        Completions discarded before statistics (and taps) start.
    rng:
        Seed / generator for reproducibility.
    taps:
        Optional :class:`FlowTap`/:class:`QueueTap` list recording flow
        event epochs / queue-length changes.
    initial_station:
        Station where closed jobs start (queued); the default places them
        at station 0, matching the closed-network convention.  Open chains
        start empty and are driven by the arrival process.
    horizon_time:
        Optional wall-clock stop: the run ends before processing any event
        at or beyond this time (statistics integrate exactly up to it).
        Transient measurements pair this with ``warmup_events=0`` so paths
        cover one fixed window ``[0, horizon_time]``.
    initial_populations:
        Optional per-station initial job counts for the closed chain
        (overrides ``initial_station``); must sum to the population.
        Transient cross-checks use this to replay analytically specified
        start states.
    initial_phases:
        Optional per-station initial service phases (default: each MAP's
        embedded-stationary draw).
    """
    with obs.get_telemetry().span(
        "sim.run", kind=network.kind, horizon_events=int(horizon_events)
    ) as span:
        t0 = obs.clock()
        result = _simulate(
            network,
            horizon_events=horizon_events,
            warmup_events=warmup_events,
            rng=rng,
            taps=taps,
            initial_station=initial_station,
            horizon_time=horizon_time,
            initial_populations=initial_populations,
            initial_phases=initial_phases,
        )
        elapsed = obs.clock() - t0
        span.count("sim.events", result.n_events)
        span.count("sim.external_arrivals", result.external_arrivals)
        span.count("sim.sink_departures", result.sink_departures)
        if elapsed > 0.0:
            span.set("event_rate_per_s", result.n_events / elapsed)
        return result


def _simulate(
    network: Network,
    horizon_events: int,
    warmup_events: int,
    rng,
    taps,
    initial_station: int,
    horizon_time: "float | None",
    initial_populations,
    initial_phases,
) -> SimResult:
    """Uninstrumented event-loop body of :func:`simulate`."""
    gen = as_rng(rng)
    M = network.n_stations
    kind = network.kind
    N = network.population if kind != "open" else 0
    taps = taps or []
    arr_taps: list[list[FlowTap]] = [[] for _ in range(M)]
    dep_taps: list[list[FlowTap]] = [[] for _ in range(M)]
    q_taps: list[list[QueueTap]] = [[] for _ in range(M)]
    for tap in taps:
        if tap.direction == "queue":
            q_taps[tap.station].append(tap)
        else:
            (arr_taps if tap.direction == "arrival" else dep_taps)[
                tap.station
            ].append(tap)

    stations = [_StationSim(st, gen) for st in network.stations]
    if initial_phases is not None:
        if len(initial_phases) != M:
            raise ValueError(
                f"initial_phases needs {M} entries, got {len(initial_phases)}"
            )
        for k, phase in enumerate(initial_phases):
            if not 0 <= int(phase) < network.stations[k].phases:
                raise ValueError(
                    f"initial phase {phase} out of range for station {k}"
                )
            stations[k].phase = int(phase)
    closed_cum = (
        _routing_cum(network.routing, open_chain=False)
        if kind in ("closed", "mixed")
        else None
    )
    open_cum = (
        _routing_cum(np.asarray(network.open_routing_matrix), open_chain=True)
        if kind != "closed"
        else None
    )
    if kind != "closed":
        entry_cum = np.cumsum(np.asarray(network.entry))
        entry_cum[-1] = 1.0
        arrival_sampler = MapSampler(network.arrivals)
        arrival_phase = arrival_sampler.initial_phase(gen)
    next_open_job = N  # open jobs get fresh ids above the closed range

    calendar: list[tuple[float, int, int, int]] = []  # (time, seq, station, job)
    seq = 0
    now = 0.0

    # --- statistics accumulators (reset at warmup) ---
    stat_t0 = 0.0
    last_change = np.zeros(M)  # last time station k's n changed
    busy_int = np.zeros(M)
    qlen_int = np.zeros(M)
    qlen_open_int = np.zeros(M)
    completions = np.zeros(M, dtype=np.int64)
    completions_open = np.zeros(M, dtype=np.int64)
    sink_departures = 0
    external_arrivals = 0
    resp: list[list[float]] = [[] for _ in range(M)]
    collecting = warmup_events == 0

    def _flush(k: int) -> None:
        """Bring station k's integrals up to `now`."""
        dt = now - last_change[k]
        if dt > 0.0:
            st = stations[k]
            qlen_int[k] += st.n * dt
            qlen_open_int[k] += st.n_open * dt
            if st.n >= 1:
                busy_int[k] += dt
        last_change[k] = now

    def _start_service(k: int) -> None:
        """Start jobs at station k while servers are free (FCFS)."""
        nonlocal seq
        st = stations[k]
        while st.waiting and st.in_service < st.servers:
            job = st.waiting.pop(0)
            st.in_service += 1
            if st.sampler is not None:
                interval, new_phase = st.sampler.sample_one(st.phase, gen)
                st.phase = new_phase  # phase after this completion
            else:
                interval = gen.exponential(1.0 / st.rate)
            seq += 1
            heapq.heappush(calendar, (now + interval, seq, k, job))

    def _arrive(k: int, job: int) -> None:
        st = stations[k]
        _flush(k)
        st.n += 1
        if job >= N:
            st.n_open += 1
        st.waiting.append(job)
        if collecting:
            st.arrival_time[job] = now
            for tap in arr_taps[k]:
                tap.record(now)
            for tap in q_taps[k]:
                tap.record(now, st.n)
        _start_service(k)

    def _schedule_arrival() -> None:
        """Queue the next external-arrival event (open/mixed only)."""
        nonlocal seq, arrival_phase
        interval, arrival_phase = arrival_sampler.sample_one(arrival_phase, gen)
        seq += 1
        heapq.heappush(calendar, (now + interval, seq, _ARRIVAL, -1))

    # Initial state: closed jobs at `initial_station` (or spread per
    # `initial_populations`), open chains empty with the first arrival
    # pending.
    if initial_populations is not None:
        pops = [int(n) for n in initial_populations]
        if len(pops) != M or any(n < 0 for n in pops) or sum(pops) != N:
            raise ValueError(
                f"initial_populations must be {M} nonnegative counts "
                f"summing to {N}, got {initial_populations!r}"
            )
        placement = [k for k in range(M) for _ in range(pops[k])]
    else:
        placement = [initial_station] * N
    for job, k0 in enumerate(placement):
        _arrive(k0, job)
    if kind != "closed":
        _schedule_arrival()

    total_completions = 0
    n_events = 0
    stopped_on_time = False
    while total_completions < horizon_events:
        if not calendar:
            raise RuntimeError("event calendar ran dry (no busy stations)")
        if horizon_time is not None and calendar[0][0] >= horizon_time:
            stopped_on_time = True
            break
        now, _, j, job = heapq.heappop(calendar)
        n_events += 1

        if j == _ARRIVAL:
            if collecting:
                external_arrivals += 1
            k = int(np.searchsorted(entry_cum, gen.random(), side="right"))
            _arrive(k, next_open_job)
            next_open_job += 1
            _schedule_arrival()
            continue

        st = stations[j]
        _flush(j)
        st.n -= 1
        if job >= N:
            st.n_open -= 1
        st.in_service -= 1
        total_completions += 1
        if collecting:
            completions[j] += 1
            if job >= N:
                completions_open[j] += 1
            t_arr = st.arrival_time.pop(job, None)
            if t_arr is not None:
                resp[j].append(now - t_arr)
            for tap in dep_taps[j]:
                tap.record(now)
            for tap in q_taps[j]:
                tap.record(now, st.n)
        else:
            st.arrival_time.pop(job, None)
        _start_service(j)

        # Route the job by its class (closed ids are 0..N-1).
        cum_row = (closed_cum if job < N else open_cum)[j]
        u = gen.random()
        k = int(np.searchsorted(cum_row, u, side="right"))
        if k >= M:
            # Open-chain exit to the sink: the job leaves the system.
            if collecting:
                sink_departures += 1
        else:
            _arrive(k, job)

        if not collecting and total_completions >= warmup_events:
            # Warmup boundary: reset all statistics, keep the system state.
            collecting = True
            stat_t0 = now
            last_change[:] = now
            busy_int[:] = 0.0
            qlen_int[:] = 0.0
            qlen_open_int[:] = 0.0
            completions[:] = 0
            completions_open[:] = 0
            sink_departures = 0
            external_arrivals = 0
            for k2 in range(M):
                resp[k2].clear()
                stations[k2].arrival_time.clear()
            for tap in taps:
                tap.reset()
            # Re-seed queue taps with the live occupancy: a reset path
            # that restarts at level `initial` would misreport every
            # station as empty until its next queue-length change.
            for k2 in range(M):
                for tap in q_taps[k2]:
                    tap.record(now, stations[k2].n)

    # Final flush: integrate statistics up to the exact stop time (the
    # time horizon when it fired first, else the last processed event).
    if stopped_on_time:
        now = horizon_time
    for k in range(M):
        _flush(k)
    duration = now - stat_t0
    if duration <= 0.0:
        raise RuntimeError("simulation horizon too short: zero measured duration")
    response_samples = [np.asarray(r) for r in resp]
    response_mean = np.array(
        [float(r.mean()) if r.size else np.nan for r in response_samples]
    )
    return SimResult(
        network=network,
        duration=duration,
        completions=completions,
        utilization=busy_int / duration,
        throughput=completions / duration,
        mean_queue_length=qlen_int / duration,
        response_mean=response_mean,
        response_samples=response_samples,
        taps=taps,
        sink_departures=sink_departures,
        external_arrivals=external_arrivals,
        mean_queue_length_open=(
            qlen_open_int / duration if kind != "closed" else None
        ),
        completions_open=completions_open if kind != "closed" else None,
        n_events=n_events,
    )

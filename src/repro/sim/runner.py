"""Replication management and confidence intervals for the simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import confidence_interval
from repro.network.model import Network
from repro.sim.engine import SimResult, simulate
from repro.utils.rng import as_rng

__all__ = ["ReplicatedResult", "replicate"]


@dataclass(frozen=True)
class ReplicatedResult:
    """Mean estimates with t-confidence intervals across replications."""

    network: Network
    n_replications: int
    utilization_mean: np.ndarray
    utilization_ci: np.ndarray  # (M, 2) lower/upper
    throughput_mean: np.ndarray
    throughput_ci: np.ndarray
    queue_length_mean: np.ndarray
    queue_length_ci: np.ndarray
    results: "tuple[SimResult, ...]"
    confidence: float = 0.95

    def _system_flow_samples(self, reference: int) -> np.ndarray:
        """Per-replication primary-chain flow (closed-chain-only for mixed).

        ``SimResult.system_throughput`` already subtracts open-chain
        completions at the reference station, so mixed networks never see
        the open class inflate the closed cycle rate here either.
        """
        return np.array(
            [r.system_throughput(reference) for r in self.results]
        )

    def response_time(self, reference: int = 0) -> float:
        """Point estimate of the primary chain's response time.

        Closed and mixed: ``N / X_ref`` with ``X_ref`` the closed chain's
        own mean completion rate at the reference station.  Open: the
        mean of the per-replication Little's-law estimates (open networks
        have no fixed ``N``).
        """
        if self.network.kind != "open":
            return self.network.population / float(
                self._system_flow_samples(reference).mean()
            )
        return float(
            np.mean([r.response_time(reference) for r in self.results])
        )

    def response_time_ci(self, reference: int = 0) -> tuple[float, float]:
        """CI for the response time (at :attr:`confidence`).

        Closed and mixed: ``N / X_ref`` mapped through a t-interval over
        the per-replication closed-chain flows.  Open: a t-interval over
        the per-replication Little's-law estimates.
        """
        if self.network.kind != "open":
            _, lo_x, hi_x = confidence_interval(
                self._system_flow_samples(reference), self.confidence
            )
            N = self.network.population
            return N / hi_x, N / lo_x
        samples = np.array([r.response_time(reference) for r in self.results])
        _, lo, hi = confidence_interval(samples, self.confidence)
        return float(lo), float(hi)


def replicate(
    network: Network,
    n_replications: int = 5,
    horizon_events: int = 100_000,
    warmup_events: int = 10_000,
    rng=None,
    confidence: float = 0.95,
) -> ReplicatedResult:
    """Run independent replications and aggregate with t-intervals."""
    if n_replications < 2:
        raise ValueError("need at least 2 replications for confidence intervals")
    gen = as_rng(rng)
    seeds = gen.integers(0, 2**63 - 1, size=n_replications)
    results = tuple(
        simulate(
            network,
            horizon_events=horizon_events,
            warmup_events=warmup_events,
            rng=int(s),
        )
        for s in seeds
    )
    M = network.n_stations

    def agg(attr: str) -> tuple[np.ndarray, np.ndarray]:
        data = np.stack([getattr(r, attr) for r in results])  # (reps, M)
        means = np.empty(M)
        cis = np.empty((M, 2))
        for k in range(M):
            m, lo, hi = confidence_interval(data[:, k], confidence)
            means[k] = m
            cis[k] = (lo, hi)
        return means, cis

    u_m, u_ci = agg("utilization")
    x_m, x_ci = agg("throughput")
    q_m, q_ci = agg("mean_queue_length")
    return ReplicatedResult(
        network=network,
        n_replications=n_replications,
        utilization_mean=u_m,
        utilization_ci=u_ci,
        throughput_mean=x_m,
        throughput_ci=x_ci,
        queue_length_mean=q_m,
        queue_length_ci=q_ci,
        results=results,
        confidence=confidence,
    )

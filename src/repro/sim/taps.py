"""Flow taps: event-time recorders at arrival/departure points.

The paper's Figure 1 marks six observation points in the TPC-W system
((1) client arrivals ... (6) DB departures) and plots the autocorrelation
of each flow.  A :class:`FlowTap` records the event epochs of one such flow
during simulation; inter-event times then feed
:func:`repro.analysis.sample_acf`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FlowTap"]


class FlowTap:
    """Records event times of one flow (station x direction).

    Parameters
    ----------
    station:
        Station index to observe.
    direction:
        ``"arrival"`` (jobs joining the station) or ``"departure"``
        (service completions leaving it).
    label:
        Name used in experiment output (e.g., ``"(6) DB Departure"``).
    """

    def __init__(self, station: int, direction: str, label: str | None = None) -> None:
        if direction not in ("arrival", "departure"):
            raise ValueError(f"direction must be arrival/departure, got {direction!r}")
        self.station = station
        self.direction = direction
        self.label = label or f"station{station}-{direction}"
        self._times: list[float] = []

    def record(self, t: float) -> None:
        self._times.append(t)

    def reset(self) -> None:
        """Drop everything recorded so far (warmup boundary)."""
        self._times.clear()

    @property
    def count(self) -> int:
        return len(self._times)

    def times(self) -> np.ndarray:
        """Event epochs as an array."""
        return np.asarray(self._times)

    def intervals(self) -> np.ndarray:
        """Inter-event times of the flow (the ACF input of Figure 1)."""
        t = self.times()
        return np.diff(t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlowTap({self.label!r}, events={self.count})"

"""Flow and queue taps: time-windowed recorders inside the simulator.

The paper's Figure 1 marks six observation points in the TPC-W system
((1) client arrivals ... (6) DB departures) and plots the autocorrelation
of each flow.  A :class:`FlowTap` records the event epochs of one such flow
during simulation; inter-event times then feed
:func:`repro.analysis.sample_acf`, and :meth:`FlowTap.binned_rates` turns
the same record into a windowed throughput trajectory ``X(t)``.

A :class:`QueueTap` records the piecewise-constant queue-length path of one
station — the measurement the transient subsystem cross-checks its
analytic ``E[N_k(t)]`` trajectories against (ensemble-averaged over
replications; see :mod:`repro.transient.validation`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["FlowTap", "QueueTap"]


class FlowTap:
    """Records event times of one flow (station x direction).

    Parameters
    ----------
    station:
        Station index to observe.
    direction:
        ``"arrival"`` (jobs joining the station) or ``"departure"``
        (service completions leaving it).
    label:
        Name used in experiment output (e.g., ``"(6) DB Departure"``).
    """

    def __init__(self, station: int, direction: str, label: str | None = None) -> None:
        if direction not in ("arrival", "departure"):
            raise ValueError(f"direction must be arrival/departure, got {direction!r}")
        self.station = station
        self.direction = direction
        self.label = label or f"station{station}-{direction}"
        self._times: list[float] = []

    def record(self, t: float) -> None:
        self._times.append(t)

    def reset(self) -> None:
        """Drop everything recorded so far (warmup boundary)."""
        self._times.clear()

    @property
    def count(self) -> int:
        return len(self._times)

    def times(self) -> np.ndarray:
        """Event epochs as an array."""
        return np.asarray(self._times)

    def intervals(self) -> np.ndarray:
        """Inter-event times of the flow (the ACF input of Figure 1)."""
        t = self.times()
        return np.diff(t)

    def binned_rates(self, edges) -> np.ndarray:
        """Windowed flow rate per bin: events in ``[e_i, e_{i+1})`` / width.

        ``edges`` is an increasing array of ``B + 1`` bin boundaries; the
        result has ``B`` entries — the time-binned throughput trajectory
        that validates analytic ``X_k(t)`` curves against simulation.
        """
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or len(edges) < 2 or np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be an increasing 1-D array (>= 2 points)")
        counts, _ = np.histogram(self.times(), bins=edges)
        return counts / np.diff(edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlowTap({self.label!r}, events={self.count})"


class QueueTap:
    """Records the queue-length step function ``N_k(t)`` of one station.

    The engine appends ``(t, n)`` on every queue-length change; the path
    is piecewise constant between records.  Direction is the fixed marker
    ``"queue"`` so the engine's tap router can tell the two tap families
    apart.

    Parameters
    ----------
    station:
        Station index to observe.
    initial:
        Queue length before the first record (0 — simulations place their
        initial jobs through ordinary arrivals at ``t = 0``, which are
        recorded).
    label:
        Name used in experiment output.
    """

    direction = "queue"

    def __init__(self, station: int, initial: int = 0, label: str | None = None) -> None:
        self.station = station
        self.initial = int(initial)
        self.label = label or f"station{station}-queue"
        self._times: list[float] = []
        self._levels: list[int] = []

    def record(self, t: float, n: int) -> None:
        self._times.append(t)
        self._levels.append(n)

    def reset(self) -> None:
        """Drop everything recorded so far (warmup boundary)."""
        self._times.clear()
        self._levels.clear()

    @property
    def count(self) -> int:
        return len(self._times)

    def times(self) -> np.ndarray:
        """Change epochs as an array."""
        return np.asarray(self._times)

    def levels(self) -> np.ndarray:
        """Queue length right after each change epoch."""
        return np.asarray(self._levels, dtype=np.int64)

    def value_at(self, t) -> np.ndarray:
        """Queue length at the given time(s): the last record at or before.

        Vectorized step-function evaluation — the time-windowed sampling
        that produces simulated ``N_k(t)`` trajectories on an arbitrary
        grid.  Times before the first record evaluate to ``initial``.
        """
        query = np.atleast_1d(np.asarray(t, dtype=float))
        ts = self.times()
        ns = self.levels()
        if len(ts) == 0:
            return np.full(query.shape, float(self.initial))
        idx = np.searchsorted(ts, query, side="right") - 1
        out = np.where(idx >= 0, ns[np.clip(idx, 0, None)], self.initial)
        return out.astype(float)

    def time_average(self, edges) -> np.ndarray:
        """Time-averaged queue length per bin ``[e_i, e_{i+1})``.

        Integrates the step function exactly over each window — the binned
        counterpart of the engine's global ``mean_queue_length``.
        """
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or len(edges) < 2 or np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be an increasing 1-D array (>= 2 points)")
        ts = self.times()
        ns = self.levels()
        # Merge record epochs and bin edges into one breakpoint sequence.
        pts = np.union1d(ts, edges)
        pts = pts[(pts >= edges[0]) & (pts <= edges[-1])]
        if len(pts) == 0 or pts[0] > edges[0]:
            pts = np.concatenate([[edges[0]], pts])
        values = self.value_at(pts[:-1])  # constant on [pts_i, pts_{i+1})
        widths = np.diff(pts)
        bin_idx = np.clip(
            np.searchsorted(edges, pts[:-1], side="right") - 1, 0, len(edges) - 2
        )
        integral = np.zeros(len(edges) - 1)
        np.add.at(integral, bin_idx, values * widths)
        return integral / np.diff(edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueueTap({self.label!r}, changes={self.count})"

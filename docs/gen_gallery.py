#!/usr/bin/env python
"""Generate the scenario gallery page from the live ScenarioRegistry.

Writes ``docs/scenarios.md`` (or the path given as the first argument)
by iterating the registered scenarios — the gallery is never hand
written, so it cannot drift from the catalog.  Run it before building
the site:

    python docs/gen_gallery.py && mkdocs build --strict
"""

from __future__ import annotations

import sys
from pathlib import Path

HEADER = """\
# Scenario gallery

<!-- GENERATED FILE — do not edit.  Regenerate with:
     python docs/gen_gallery.py -->

Every scenario below is registered in `repro.scenarios.catalog` and this
page is generated from the registry itself (`docs/gen_gallery.py`).
Solve any of them with:

```bash
python -m repro.scenarios solve <name> --method lp
```

"""


def render_scenario(sc) -> str:
    """Markdown section for one scenario."""
    net = sc.network()
    lines = [f"## `{sc.name}`", ""]
    lines.append(f"**{sc.summary}**")
    lines.append("")
    meta = [f"paper: {sc.paper_ref}"] if sc.paper_ref else []
    if sc.tags:
        meta.append("tags: " + ", ".join(sc.tags))
    if meta:
        lines.append(" — ".join(meta))
        lines.append("")
    lines.append(sc.description)
    lines.append("")
    if net.kind == "open":
        lines.append(
            f"Model: open, {net.n_stations} stations, external arrival "
            f"rate {net.arrivals.rate:.4g} (offered utilizations "
            f"{[round(float(r), 3) for r in net.open_utilizations]})."
        )
    elif net.kind == "mixed":
        lines.append(
            f"Model: mixed, {net.n_stations} stations, default closed "
            f"population {sc.default_population} plus an open chain at "
            f"rate {net.arrivals.rate:.4g}; suggested sweep "
            f"{list(sc.populations)}."
        )
    else:
        lines.append(
            f"Model: {net.n_stations} stations, default population "
            f"{sc.default_population}, suggested sweep "
            f"{list(sc.populations)}."
        )
    lines.append("")
    if sc.defaults:
        lines.append("| parameter | default |")
        lines.append("| --- | --- |")
        for key, value in sc.defaults.items():
            lines.append(f"| `{key}` | `{value!r}` |")
        lines.append("")
    solve_method = {"open": "qbd", "mixed": "sim"}.get(net.kind, "mva")
    lines.append("```bash")
    lines.append(f"python -m repro.scenarios show {sc.name}")
    lines.append(f"python -m repro.scenarios solve {sc.name} --method {solve_method}")
    lines.append("```")
    lines.append("")
    return "\n".join(lines)


def generate() -> str:
    """Full gallery page text."""
    from repro.scenarios import get_scenario_registry

    registry = get_scenario_registry()
    parts = [HEADER]
    parts.append(
        f"**{len(registry)} scenarios registered.**\n"
    )
    for sc in registry:
        parts.append(render_scenario(sc))
    return "\n".join(parts)


def main(argv: "list[str] | None" = None) -> int:
    """Write the gallery page and report where it went."""
    argv = sys.argv[1:] if argv is None else argv
    out = Path(argv[0]) if argv else Path(__file__).parent / "scenarios.md"
    # allow running from a source checkout without installation
    src = Path(__file__).resolve().parent.parent / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))
    text = generate()
    out.write_text(text, encoding="utf-8")
    print(f"wrote {out} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Generate the scenario gallery page from the live ScenarioRegistry.

Writes ``docs/scenarios.md`` (or the path given as the first argument)
by iterating the registered scenarios — the gallery is never hand
written, so it cannot drift from the catalog.  For every closed scenario
it also renders a bound-vs-population chart (``docs/plots/*.svg``,
hand-written SVG — no plotting dependency): ABA and LP throughput bounds
with the fluid limit overlaid and exact points where the CTMC is small
enough to enumerate.  The curves are solved through the SweepRunner over
the default result cache, so regeneration after the first run is a cache
replay.  Run it before building the site:

    python docs/gen_gallery.py && mkdocs build --strict

Pass ``--no-plots`` to regenerate only the markdown (fast, no solves).
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

#: Feasibility ceilings for the expensive tiers, chosen so every gallery
#: point solves in well under a second: the exact CTMC is enumerated only
#: below ``_EXACT_STATE_CEILING`` joint states, the LP bounds only below
#: ``_LP_VAR_CEILING`` program variables.  ABA and fluid are closed-form
#: and run at every point.
_EXACT_STATE_CEILING = 10_000
_LP_VAR_CEILING = 4_000
#: At most this many populations per chart (downsampled from the
#: scenario's suggested sweep).
_MAX_PLOT_POINTS = 6

_PLOT_STYLE = {
    "aba": ("#8a8a8a", "6 4"),  # grey, dashed
    "lp": ("#1f6fb4", ""),  # blue, solid
    "fluid": ("#c23b22", "2 3"),  # red, dotted
    "exact": ("#2c8a4b", ""),  # green, solid + markers
}

HEADER = """\
# Scenario gallery

<!-- GENERATED FILE — do not edit.  Regenerate with:
     python docs/gen_gallery.py -->

Every scenario below is registered in `repro.scenarios.catalog` and this
page is generated from the registry itself (`docs/gen_gallery.py`).
Solve any of them with:

```bash
python -m repro.scenarios solve <name> --method lp
```

"""


def render_scenario(sc) -> str:
    """Markdown section for one scenario."""
    net = sc.network()
    lines = [f"## `{sc.name}`", ""]
    lines.append(f"**{sc.summary}**")
    lines.append("")
    meta = [f"paper: {sc.paper_ref}"] if sc.paper_ref else []
    if sc.tags:
        meta.append("tags: " + ", ".join(sc.tags))
    if meta:
        lines.append(" — ".join(meta))
        lines.append("")
    lines.append(sc.description)
    lines.append("")
    if net.kind == "open":
        lines.append(
            f"Model: open, {net.n_stations} stations, external arrival "
            f"rate {net.arrivals.rate:.4g} (offered utilizations "
            f"{[round(float(r), 3) for r in net.open_utilizations]})."
        )
    elif net.kind == "mixed":
        lines.append(
            f"Model: mixed, {net.n_stations} stations, default closed "
            f"population {sc.default_population} plus an open chain at "
            f"rate {net.arrivals.rate:.4g}; suggested sweep "
            f"{list(sc.populations)}."
        )
    else:
        lines.append(
            f"Model: {net.n_stations} stations, default population "
            f"{sc.default_population}, suggested sweep "
            f"{list(sc.populations)}."
        )
    lines.append("")
    if sc.defaults:
        lines.append("| parameter | default |")
        lines.append("| --- | --- |")
        for key, value in sc.defaults.items():
            lines.append(f"| `{key}` | `{value!r}` |")
        lines.append("")
    solve_method = {"open": "qbd", "mixed": "sim"}.get(net.kind, "mva")
    lines.append("```bash")
    lines.append(f"python -m repro.scenarios show {sc.name}")
    lines.append(f"python -m repro.scenarios solve {sc.name} --method {solve_method}")
    lines.append("```")
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# bound-vs-population charts (hand-written SVG, no plotting dependency)
# ---------------------------------------------------------------------- #
def _downsample(seq, k):
    """At most ``k`` evenly spaced entries, always keeping first and last."""
    seq = list(seq)
    if len(seq) <= k:
        return seq
    idx = [round(i * (len(seq) - 1) / (k - 1)) for i in range(k)]
    return [seq[i] for i in sorted(set(idx))]


def _lp_variables(net) -> int:
    from repro.core.assembly import VariableIndex

    return max(
        off + math.prod(shape) for _, off, shape in VariableIndex(net).blocks()
    )


def bound_curves(sc) -> "dict | None":
    """Solve the bound ladder over the scenario's population sweep.

    Returns ``{"populations", "aba", "lp", "fluid", "exact"}`` where the
    bound tiers map to ``(population, lower, upper)`` triples and the
    point tiers to ``(population, value)`` pairs — or ``None`` for
    non-closed scenarios (the fluid/exact ladder is a closed-network
    construction).
    """
    from repro.network.statespace import expected_state_count
    from repro.runtime.sweep import SweepRunner

    if sc.network().kind != "closed":
        return None
    populations = _downsample(sc.populations, _MAX_PLOT_POINTS)
    if not populations:
        return None
    networks = [sc.network(population=n) for n in populations]
    runner = SweepRunner(workers=1)

    aba = runner.run(networks, "aba")
    fluid = runner.run(networks, "fluid")
    curves = {
        "populations": populations,
        "aba": [
            (n, r.system_throughput.lower, r.system_throughput.upper)
            for n, r in zip(populations, aba)
        ],
        "fluid": [
            (n, r.system_throughput_point())
            for n, r in zip(populations, fluid)
        ],
        "lp": [],
        "exact": [],
    }
    lp_nets = [
        (n, net)
        for n, net in zip(populations, networks)
        if _lp_variables(net) <= _LP_VAR_CEILING
    ]
    if lp_nets:
        results = runner.run(
            [net for _, net in lp_nets], "lp", metrics=("system_throughput",)
        )
        curves["lp"] = [
            (n, r.system_throughput.lower, r.system_throughput.upper)
            for (n, _), r in zip(lp_nets, results)
        ]
    exact_nets = [
        (n, net)
        for n, net in zip(populations, networks)
        if expected_state_count(net) <= _EXACT_STATE_CEILING
    ]
    if exact_nets:
        results = runner.run([net for _, net in exact_nets], "exact")
        curves["exact"] = [
            (n, r.system_throughput_point())
            for (n, _), r in zip(exact_nets, results)
        ]
    return curves


def render_bounds_svg(sc, curves) -> str:
    """One bound-vs-population chart as a standalone SVG document."""
    width, height = 640, 360
    left, right, top, bottom = 62, 16, 34, 52
    plot_w, plot_h = width - left - right, height - top - bottom

    populations = curves["populations"]
    xs = [math.log10(n) for n in populations]
    x_lo, x_hi = min(xs), max(xs)
    if x_hi - x_lo < 1e-12:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    ys = [v for _, v in curves["fluid"]] + [v for _, v in curves["exact"]]
    for _, lo, hi in curves["aba"] + curves["lp"]:
        ys.extend((lo, hi))
    y_hi = max(ys) * 1.08
    y_lo = 0.0

    def px(n):
        return left + (math.log10(n) - x_lo) / (x_hi - x_lo) * plot_w

    def py(v):
        return top + (1.0 - (v - y_lo) / (y_hi - y_lo)) * plot_h

    def poly(points, color, dash, width_=1.6):
        attrs = f' stroke-dasharray="{dash}"' if dash else ""
        coords = " ".join(f"{px(n):.1f},{py(v):.1f}" for n, v in points)
        return (
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="{width_}"{attrs}/>'
        )

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'viewBox="0 0 {width} {height}" '
        f'font-family="Helvetica,Arial,sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="18" text-anchor="middle" '
        f'font-size="13">{sc.name}: throughput bounds vs population</text>',
        # axes
        f'<line x1="{left}" y1="{top}" x2="{left}" '
        f'y2="{top + plot_h}" stroke="#333"/>',
        f'<line x1="{left}" y1="{top + plot_h}" x2="{left + plot_w}" '
        f'y2="{top + plot_h}" stroke="#333"/>',
    ]
    # x ticks at the sampled populations (log scale)
    for n in populations:
        x = px(n)
        parts.append(
            f'<line x1="{x:.1f}" y1="{top + plot_h}" x2="{x:.1f}" '
            f'y2="{top + plot_h + 4}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{top + plot_h + 16}" '
            f'text-anchor="middle">{n}</text>'
        )
    parts.append(
        f'<text x="{left + plot_w / 2:.0f}" y="{height - 10}" '
        f'text-anchor="middle">population N (log scale)</text>'
    )
    # y ticks
    for i in range(5):
        v = y_lo + (y_hi - y_lo) * i / 4
        y = py(v)
        parts.append(
            f'<line x1="{left - 4}" y1="{y:.1f}" x2="{left}" '
            f'y2="{y:.1f}" stroke="#333"/>'
        )
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" '
            f'y2="{y:.1f}" stroke="#eee"/>'
        )
        parts.append(
            f'<text x="{left - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{v:.3g}</text>'
        )
    parts.append(
        f'<text x="14" y="{top + plot_h / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 14 {top + plot_h / 2:.0f})">'
        f"system throughput X</text>"
    )
    # series: bound pairs as two polylines, points as polyline + markers
    color, dash = _PLOT_STYLE["aba"]
    parts.append(poly([(n, lo) for n, lo, _ in curves["aba"]], color, dash))
    parts.append(poly([(n, hi) for n, _, hi in curves["aba"]], color, dash))
    if curves["lp"]:
        color, dash = _PLOT_STYLE["lp"]
        parts.append(poly([(n, lo) for n, lo, _ in curves["lp"]], color, dash))
        parts.append(poly([(n, hi) for n, _, hi in curves["lp"]], color, dash))
    color, dash = _PLOT_STYLE["fluid"]
    parts.append(poly(curves["fluid"], color, dash, width_=2.0))
    if curves["exact"]:
        color, dash = _PLOT_STYLE["exact"]
        if len(curves["exact"]) > 1:
            parts.append(poly(curves["exact"], color, dash))
        for n, v in curves["exact"]:
            parts.append(
                f'<circle cx="{px(n):.1f}" cy="{py(v):.1f}" r="3" '
                f'fill="{color}"/>'
            )
    # legend (top-left inside the plot area)
    entries = [("aba bounds", "aba"), ("fluid limit", "fluid")]
    if curves["lp"]:
        entries.insert(1, ("lp bounds", "lp"))
    if curves["exact"]:
        entries.append(("exact", "exact"))
    ly = top + 8
    for label, key in entries:
        color, dash = _PLOT_STYLE[key]
        attrs = f' stroke-dasharray="{dash}"' if dash else ""
        parts.append(
            f'<line x1="{left + 10}" y1="{ly:.0f}" x2="{left + 34}" '
            f'y2="{ly:.0f}" stroke="{color}" stroke-width="2"{attrs}/>'
        )
        parts.append(
            f'<text x="{left + 40}" y="{ly + 4:.0f}">{label}</text>'
        )
        ly += 15
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def write_plots(out_dir: Path) -> "dict[str, str]":
    """Render every closed scenario's chart; returns name -> filename."""
    from repro.scenarios import get_scenario_registry

    out_dir.mkdir(parents=True, exist_ok=True)
    written: dict[str, str] = {}
    for sc in get_scenario_registry():
        curves = bound_curves(sc)
        if curves is None:
            continue
        filename = f"{sc.name}_bounds.svg"
        (out_dir / filename).write_text(
            render_bounds_svg(sc, curves), encoding="utf-8"
        )
        written[sc.name] = filename
        print(f"  plot {out_dir / filename}")
    return written


def generate(plots: "dict[str, str] | None" = None) -> str:
    """Full gallery page text."""
    from repro.scenarios import get_scenario_registry

    registry = get_scenario_registry()
    parts = [HEADER]
    parts.append(
        f"**{len(registry)} scenarios registered.**\n"
    )
    for sc in registry:
        section = render_scenario(sc)
        if plots and sc.name in plots:
            section += (
                f"\n![{sc.name} throughput bounds vs population]"
                f"(plots/{plots[sc.name]})\n"
            )
        parts.append(section)
    return "\n".join(parts)


def main(argv: "list[str] | None" = None) -> int:
    """Write the gallery page (and charts) and report where they went."""
    argv = sys.argv[1:] if argv is None else argv
    with_plots = "--no-plots" not in argv
    argv = [a for a in argv if a != "--no-plots"]
    out = Path(argv[0]) if argv else Path(__file__).parent / "scenarios.md"
    # allow running from a source checkout without installation
    src = Path(__file__).resolve().parent.parent / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))
    plot_dir = out.parent / "plots"
    if with_plots:
        plots = write_plots(plot_dir)
    else:
        # Markdown-only refresh: keep embedding whatever charts already
        # exist on disk instead of silently dropping them from the page.
        plots = {
            p.stem.removesuffix("_bounds"): p.name
            for p in sorted(plot_dir.glob("*_bounds.svg"))
        }
    text = generate(plots)
    out.write_text(text, encoding="utf-8")
    print(f"wrote {out} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
